package vector

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func TestSquaredEuclideanKnownValues(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float64
	}{
		{nil, nil, 0},
		{[]float32{1}, []float32{1}, 0},
		{[]float32{0}, []float32{3}, 9},
		{[]float32{1, 2, 3}, []float32{4, 6, 3}, 9 + 16},
		{[]float32{1, 1, 1, 1, 1, 1, 1, 1, 1}, []float32{0, 0, 0, 0, 0, 0, 0, 0, 0}, 9},
	}
	for i, c := range cases {
		if got := SquaredEuclidean(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: SquaredEuclidean = %v, want %v", i, got, c.want)
		}
		if got := ScalarSquaredEuclidean(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("case %d: ScalarSquaredEuclidean = %v, want %v", i, got, c.want)
		}
	}
}

func TestSquaredEuclideanMismatchedLengths(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{1, 2}
	// Extra elements are ignored; only the common prefix is compared.
	if got := SquaredEuclidean(a, b); got != 0 {
		t.Errorf("SquaredEuclidean over common prefix = %v, want 0", got)
	}
	if got := SquaredEuclidean(b, a); got != 0 {
		t.Errorf("SquaredEuclidean (swapped) = %v, want 0", got)
	}
}

// The unrolled kernel must agree with the naive kernel on random input.
func TestUnrolledMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 64, 128, 255, 256} {
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		fast := SquaredEuclidean(a, b)
		slow := ScalarSquaredEuclidean(a, b)
		if diff := math.Abs(fast - slow); diff > 1e-6*(1+slow) {
			t.Errorf("n=%d: unrolled %v vs scalar %v (diff %v)", n, fast, slow, diff)
		}
	}
}

func TestUnrolledMatchesScalarProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)
		r := rand.New(rand.NewSource(seed))
		a := randSeries(r, n)
		b := randSeries(r, n)
		fast := SquaredEuclidean(a, b)
		slow := ScalarSquaredEuclidean(a, b)
		return math.Abs(fast-slow) <= 1e-6*(1+slow)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEarlyAbandonExactWhenUnderLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		exact := SquaredEuclidean(a, b)
		got := SquaredEuclideanEarlyAbandon(a, b, exact+1)
		if math.Abs(got-exact) > 1e-6*(1+exact) {
			t.Fatalf("trial %d: early-abandon with generous limit = %v, want %v", trial, got, exact)
		}
		gotScalar := ScalarSquaredEuclideanEarlyAbandon(a, b, exact+1)
		if math.Abs(gotScalar-exact) > 1e-6*(1+exact) {
			t.Fatalf("trial %d: scalar early-abandon = %v, want %v", trial, gotScalar, exact)
		}
	}
}

func TestEarlyAbandonReturnsAtLeastLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 32 + rng.Intn(300)
		a := randSeries(rng, n)
		b := randSeries(rng, n)
		exact := SquaredEuclidean(a, b)
		if exact == 0 {
			continue
		}
		limit := exact / 2
		got := SquaredEuclideanEarlyAbandon(a, b, limit)
		if got < limit {
			t.Fatalf("trial %d: abandoned result %v < limit %v", trial, got, limit)
		}
	}
}

func TestEarlyAbandonZeroLimit(t *testing.T) {
	a := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17}
	b := make([]float32, len(a))
	got := SquaredEuclideanEarlyAbandon(a, b, 0)
	if got < 0 {
		t.Errorf("negative distance %v", got)
	}
}

func TestSquaredEnvelopeDistance(t *testing.T) {
	x := []float32{0, 5, -5, 2}
	lo := []float32{-1, -1, -1, -1}
	hi := []float32{1, 1, 1, 1}
	// 0 inside; 5 above by 4 (16); -5 below by 4 (16); 2 above by 1 (1).
	want := 16.0 + 16.0 + 1.0
	if got := SquaredEnvelopeDistance(x, lo, hi); math.Abs(got-want) > 1e-9 {
		t.Errorf("SquaredEnvelopeDistance = %v, want %v", got, want)
	}
}

func TestSquaredEnvelopeDistanceInsideIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 100
	x := randSeries(rng, n)
	lo := make([]float32, n)
	hi := make([]float32, n)
	for i := range x {
		lo[i] = x[i] - 1
		hi[i] = x[i] + 1
	}
	if got := SquaredEnvelopeDistance(x, lo, hi); got != 0 {
		t.Errorf("distance inside envelope = %v, want 0", got)
	}
}

func TestSquaredEnvelopeDistanceEarlyAbandon(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		x := randSeries(rng, n)
		q := randSeries(rng, n)
		lo := make([]float32, n)
		hi := make([]float32, n)
		for i := range q {
			lo[i] = q[i] - 0.1
			hi[i] = q[i] + 0.1
		}
		exact := SquaredEnvelopeDistance(x, lo, hi)
		got := SquaredEnvelopeDistanceEarlyAbandon(x, lo, hi, exact+1)
		if math.Abs(got-exact) > 1e-6*(1+exact) {
			t.Fatalf("trial %d: envelope early-abandon = %v, want %v", trial, got, exact)
		}
		if exact > 0 {
			abandoned := SquaredEnvelopeDistanceEarlyAbandon(x, lo, hi, exact/2)
			if abandoned < exact/2 {
				t.Fatalf("trial %d: abandoned %v < limit %v", trial, abandoned, exact/2)
			}
		}
	}
}

// Envelope distance degenerates to squared ED when the envelope collapses
// to a single series.
func TestEnvelopeDistanceDegeneratesToED(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		x := randSeries(rng, n)
		q := randSeries(rng, n)
		env := SquaredEnvelopeDistance(x, q, q)
		ed := SquaredEuclidean(x, q)
		if math.Abs(env-ed) > 1e-6*(1+ed) {
			t.Fatalf("trial %d: collapsed envelope %v != ED %v", trial, env, ed)
		}
	}
}

func TestEnvelopeLowerBoundsED(t *testing.T) {
	// For any envelope containing q, env distance <= ED(x, q).
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		r := rand.New(rand.NewSource(seed))
		x := randSeries(r, n)
		q := randSeries(r, n)
		lo := make([]float32, n)
		hi := make([]float32, n)
		for i := range q {
			w := float32(r.Float64())
			lo[i] = q[i] - w
			hi[i] = q[i] + w
		}
		return SquaredEnvelopeDistance(x, lo, hi) <= SquaredEuclidean(x, q)+1e-6
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMin(t *testing.T) {
	if Min(1, 2) != 1 || Min(2, 1) != 1 || Min(3, 3) != 3 {
		t.Error("Min is broken")
	}
}

func BenchmarkSquaredEuclidean256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SquaredEuclidean(x, y)
	}
}

func BenchmarkScalarSquaredEuclidean256(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScalarSquaredEuclidean(x, y)
	}
}
