package paris

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/vector"
)

func smallOpts() Options {
	return Options{
		LeafCapacity:  32,
		IndexWorkers:  4,
		SearchWorkers: 8,
	}
}

func buildParis(t testing.TB, kind dataset.Kind, count, length int) *Index {
	t.Helper()
	data, err := dataset.Generate(kind, count, length, 11)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(data, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func brute1NN(data *series.Collection, query []float32) core.Match {
	best := core.Match{Position: -1, Dist: math.Inf(1)}
	for i := 0; i < data.Count(); i++ {
		d := vector.SquaredEuclidean(data.At(i), query)
		if d < best.Dist {
			best = core.Match{Position: i, Dist: d}
		}
	}
	return best
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("nil collection accepted")
	}
	empty, _ := series.NewEmptyCollection(0, 64)
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty collection accepted")
	}
	bad, _ := series.NewEmptyCollection(4, 100)
	if _, err := Build(bad, Options{Segments: 16}); err == nil {
		t.Error("non-multiple length accepted")
	}
}

func TestBuildConservesSeriesAndFillsSAX(t *testing.T) {
	ix := buildParis(t, dataset.RandomWalk, 3000, 64)
	st := ix.Tree.Stats()
	if st.Series != 3000 {
		t.Fatalf("tree holds %d series, want 3000", st.Series)
	}
	if err := ix.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(ix.SAX) != 3000*16 {
		t.Fatalf("SAX array length %d", len(ix.SAX))
	}
	// Spot-check: the SAX word of series i routes to the root subtree
	// that contains it.
	for i := 0; i < 3000; i += 311 {
		l := ix.Schema.RootIndex(ix.Word(i))
		if ix.Tree.Root(l) == nil {
			t.Errorf("series %d's subtree %d is empty", i, l)
		}
	}
}

func TestBuildTimedPhases(t *testing.T) {
	data, _ := dataset.Generate(dataset.RandomWalk, 2000, 64, 3)
	var bt BuildTiming
	if _, err := BuildTimed(data, smallOpts(), &bt); err != nil {
		t.Fatal(err)
	}
	if bt.Summarize <= 0 || bt.TreeBuild <= 0 {
		t.Errorf("phases not recorded: %+v", bt)
	}
	if bt.Total() != bt.Summarize+bt.TreeBuild {
		t.Errorf("total inconsistent")
	}
}

func TestSIMSMatchesBruteForce(t *testing.T) {
	ix := buildParis(t, dataset.RandomWalk, 3000, 64)
	queries, _ := dataset.Queries(dataset.RandomWalk, 20, 64, 55)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := brute1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: %v want %v", qi, got.Dist, want.Dist)
		}
	}
}

func TestSIMSSISDMatchesBruteForce(t *testing.T) {
	ix := buildParis(t, dataset.SeismicLike, 1500, 64)
	queries, _ := dataset.Queries(dataset.SeismicLike, 10, 64, 56)
	for qi := 0; qi < queries.Count(); qi++ {
		q := queries.At(qi)
		want := brute1NN(ix.Data, q)
		got, err := ix.Search(q, SearchOptions{Kernel: KernelSISD})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
			t.Fatalf("query %d: %v want %v", qi, got.Dist, want.Dist)
		}
	}
}

func TestSIMSComputesLowerBoundForEverySeries(t *testing.T) {
	ix := buildParis(t, dataset.RandomWalk, 2000, 64)
	ctrs := &stats.Counters{}
	if _, err := ix.Search(ix.Data.At(3), SearchOptions{Counters: ctrs}); err != nil {
		t.Fatal(err)
	}
	// The defining SIMS behaviour (Figure 17a): a lower-bound computation
	// for every series in the collection.
	if got := ctrs.Snapshot().LowerBoundCalcs; got < 2000 {
		t.Errorf("SIMS lower-bound calcs = %d, want >= 2000", got)
	}
}

func TestTSMatchesBruteForce(t *testing.T) {
	ix := buildParis(t, dataset.RandomWalk, 3000, 64)
	queries, _ := dataset.Queries(dataset.RandomWalk, 20, 64, 57)
	for _, workers := range []int{1, 4, 8} {
		for qi := 0; qi < queries.Count(); qi++ {
			q := queries.At(qi)
			want := brute1NN(ix.Data, q)
			got, err := ix.SearchTS(q, SearchOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Dist-want.Dist) > 1e-6*(1+want.Dist) {
				t.Fatalf("workers=%d query %d: %v want %v", workers, qi, got.Dist, want.Dist)
			}
		}
	}
}

func TestTSDoesFewerLowerBoundsThanSIMS(t *testing.T) {
	ix := buildParis(t, dataset.RandomWalk, 4000, 64)
	q, _ := dataset.Queries(dataset.RandomWalk, 1, 64, 58)
	query := q.At(0)
	simsCtrs := &stats.Counters{}
	if _, err := ix.Search(query, SearchOptions{Counters: simsCtrs}); err != nil {
		t.Fatal(err)
	}
	tsCtrs := &stats.Counters{}
	if _, err := ix.SearchTS(query, SearchOptions{Counters: tsCtrs}); err != nil {
		t.Fatal(err)
	}
	// ParIS-TS prunes during lower-bound computation; SIMS cannot
	// (it sweeps the whole SAX array).
	if tsCtrs.Snapshot().LowerBoundCalcs >= simsCtrs.Snapshot().LowerBoundCalcs {
		t.Errorf("TS lower bounds (%d) should be below SIMS (%d)",
			tsCtrs.Snapshot().LowerBoundCalcs, simsCtrs.Snapshot().LowerBoundCalcs)
	}
}

func TestSearchValidation(t *testing.T) {
	ix := buildParis(t, dataset.RandomWalk, 100, 64)
	if _, err := ix.Search(make([]float32, 32), SearchOptions{}); err == nil {
		t.Error("SIMS: wrong-length query accepted")
	}
	if _, err := ix.SearchTS(make([]float32, 32), SearchOptions{}); err == nil {
		t.Error("TS: wrong-length query accepted")
	}
}

func TestSelfQueries(t *testing.T) {
	ix := buildParis(t, dataset.SALDLike, 800, 128)
	for i := 0; i < 20; i++ {
		q := ix.Data.At(i * 37 % 800)
		m, err := ix.Search(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Dist != 0 {
			t.Fatalf("SIMS self query %d: dist %v", i, m.Dist)
		}
		m, err = ix.SearchTS(q, SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Dist != 0 {
			t.Fatalf("TS self query %d: dist %v", i, m.Dist)
		}
	}
}
