// Package paris implements the paper's principal competitor: the
// in-memory version of ParIS (Peng, Palpanas, Fatourou, IEEE BigData
// 2018), including its SIMS query answering strategy, the ParIS-SISD
// ablation (scalar kernels), and ParIS-TS (the traditional tree-based
// exact search parallelized on top of the ParIS index).
//
// The construction pipeline deliberately keeps the two ParIS behaviours
// that MESSI redesigns (§I, §III-A of the MESSI paper):
//
//  1. receive buffers are shared per root subtree and protected by locks
//     (MESSI: per-worker lock-free parts), and
//  2. the raw array is split statically into one chunk per bulk-loading
//     worker (MESSI: many small chunks claimed via Fetch&Inc), which costs
//     load balance.
//
// ParIS also materializes the global SAX array (one iSAX word per series):
// SIMS scans that entire array at query time, which is why ParIS performs
// lower-bound distance calculations for every series in the collection
// (Figure 17a) while MESSI prunes during the tree pass.
package paris

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/isax"
	"repro/internal/paa"
	"repro/internal/series"
	"repro/internal/tree"
)

// Options configures ParIS. Zero fields default to the paper's settings
// (same parameters as MESSI for a fair comparison).
type Options struct {
	Segments      int // w
	CardBits      int // bits per symbol
	LeafCapacity  int // leaf split threshold
	IndexWorkers  int // bulk-loading / index-construction workers
	SearchWorkers int // SIMS lower-bound and real-distance workers
}

func (o Options) withDefaults() Options {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&o.Segments, 16)
	def(&o.CardBits, 8)
	def(&o.LeafCapacity, 2000)
	def(&o.IndexWorkers, 24)
	def(&o.SearchWorkers, 48)
	return o
}

// Index is a built in-memory ParIS index: the raw data, the global SAX
// array, and the iSAX tree (which SIMS uses only for the approximate
// answer).
type Index struct {
	Data   *series.Collection
	Schema *isax.Schema
	Tree   *tree.Tree
	SAX    []uint8 // one full-precision word per series, stride Segments
	Opts   Options

	activeRoots []int32
}

// BuildTiming mirrors core.BuildTiming for Figure 9's phase split.
type BuildTiming struct {
	Summarize time.Duration
	TreeBuild time.Duration
}

// Total returns end-to-end construction time.
func (bt BuildTiming) Total() time.Duration { return bt.Summarize + bt.TreeBuild }

// Build constructs the ParIS index.
func Build(data *series.Collection, opts Options) (*Index, error) {
	return BuildTimed(data, opts, nil)
}

// BuildTimed is Build with optional per-phase timing.
func BuildTimed(data *series.Collection, opts Options, timing *BuildTiming) (*Index, error) {
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("paris: cannot build an index over an empty collection")
	}
	opts = opts.withDefaults()
	schema, err := isax.NewSchema(data.Length, opts.Segments, opts.CardBits)
	if err != nil {
		return nil, err
	}
	tr, err := tree.New(schema, opts.LeafCapacity)
	if err != nil {
		return nil, err
	}
	ix := &Index{
		Data:   data,
		Schema: schema,
		Tree:   tr,
		SAX:    make([]uint8, data.Count()*schema.Segments),
		Opts:   opts,
	}

	nw := opts.IndexWorkers
	n := data.Count()
	if nw > n {
		nw = n
	}
	recv := buffer.NewLockedBuffers(schema.RootFanout())

	// Phase 1 — bulk loading: static partition (one chunk per worker),
	// each append to the shared receive buffer takes that buffer's lock.
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			bulkLoadWorker(ix, recv, w*n/nw, (w+1)*n/nw)
		}(w)
	}
	wg.Wait()
	summarizeDone := time.Now()

	// Phase 2 — index construction: workers claim root subtrees via
	// Fetch&Inc and insert the buffered positions, reading words from the
	// SAX array.
	var subtreeCtr atomic.Int64
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			constructionWorker(ix, recv, &subtreeCtr)
		}()
	}
	wg.Wait()

	if timing != nil {
		timing.Summarize = summarizeDone.Sub(start)
		timing.TreeBuild = time.Since(summarizeDone)
	}
	for l := 0; l < schema.RootFanout(); l++ {
		if tr.Root(l) != nil {
			ix.activeRoots = append(ix.activeRoots, int32(l))
		}
	}
	return ix, nil
}

func bulkLoadWorker(ix *Index, recv *buffer.LockedBuffers, lo, hi int) {
	schema := ix.Schema
	w := schema.Segments
	paaBuf := make([]float64, w)
	for j := lo; j < hi; j++ {
		paa.Transform(ix.Data.At(j), w, paaBuf)
		word := ix.SAX[j*w : (j+1)*w]
		schema.WordFromPAA(paaBuf, word)
		recv.Append(schema.RootIndex(word), int32(j))
	}
}

func constructionWorker(ix *Index, recv *buffer.LockedBuffers, subtreeCtr *atomic.Int64) {
	schema := ix.Schema
	w := schema.Segments
	fanout := schema.RootFanout()
	for {
		l := int(subtreeCtr.Add(1) - 1)
		if l >= fanout {
			return
		}
		positions := recv.Positions(l)
		if len(positions) == 0 {
			continue
		}
		root := ix.Tree.EnsureRoot(l)
		for _, pos := range positions {
			ix.Tree.Insert(root, ix.SAX[int(pos)*w:(int(pos)+1)*w], pos)
		}
	}
}

// Word returns series i's full-precision iSAX word from the SAX array.
func (ix *Index) Word(i int) []uint8 {
	w := ix.Schema.Segments
	return ix.SAX[i*w : (i+1)*w]
}

func (ix *Index) validateQuery(query []float32) error {
	if len(query) != ix.Data.Length {
		return fmt.Errorf("paris: query length %d, index series length %d", len(query), ix.Data.Length)
	}
	return nil
}
