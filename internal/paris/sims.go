package paris

import (
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/vector"
)

// Kernel selects the distance kernels used by SIMS, reproducing the
// ParIS-SISD ablation of Figure 18.
type Kernel int

// Kernel choices.
const (
	KernelSIMD Kernel = iota // unrolled multi-accumulator kernels (default)
	KernelSISD               // naive per-element kernels with per-element branches
)

// SearchOptions configures a SIMS query.
type SearchOptions struct {
	Workers  int    // lower-bound / real-distance workers
	Kernel   Kernel // SIMD (default) or SISD
	Counters *stats.Counters
}

// Search answers an exact 1-NN query with the SIMS strategy (§II of the
// MESSI paper):
//
//  1. approximate answer: descend the tree to the query's leaf and take
//     the best real distance in it — the initial BSF;
//  2. lower-bound stage: workers sweep the ENTIRE SAX array computing
//     MINDIST(query PAA, word) for every series, collecting candidates
//     with bound < BSF (the BSF is fixed during this stage — ParIS prunes
//     only against the approximate answer here);
//  3. real-distance stage: workers share the candidate list and compute
//     early-abandoning real distances, updating a shared BSF.
func (ix *Index) Search(query []float32, opt SearchOptions) (core.Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return core.Match{}, err
	}
	if ix.Data.Count() == 0 {
		return core.Match{}, core.ErrEmptyIndex
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = ix.Opts.SearchWorkers
	}
	n := ix.Data.Count()
	if workers > n {
		workers = n
	}
	ctrs := opt.Counters

	qpaa := ix.queryPAA(query)
	bsf := stats.NewBSF()
	ix.approxSearch(query, qpaa, bsf, opt.Kernel, ctrs)

	// Stage 2: full SAX-array lower-bound sweep against the fixed
	// approximate BSF. Per-worker candidate lists avoid contention and
	// are concatenated after the barrier.
	approxBound := bsf.Load()
	localCands := make([][]int32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * n / workers
			hi := (w + 1) * n / workers
			cands := make([]int32, 0, (hi-lo)/16+1)
			var lbCount int64
			if opt.Kernel == KernelSISD {
				// The pre-SIMD scalar lower-bound kernel: this stage
				// touches every series, so the kernel choice dominates
				// the Figure 18 SISD-vs-SIMD gap.
				for i := lo; i < hi; i++ {
					lbCount++
					if ix.Schema.MinDistPAAWordNaive(qpaa, ix.Word(i)) < approxBound {
						cands = append(cands, int32(i))
					}
				}
			} else {
				for i := lo; i < hi; i++ {
					lbCount++
					if ix.Schema.MinDistPAAWord(qpaa, ix.Word(i)) < approxBound {
						cands = append(cands, int32(i))
					}
				}
			}
			ctrs.AddLowerBound(lbCount)
			localCands[w] = cands
		}(w)
	}
	wg.Wait()
	total := 0
	for _, c := range localCands {
		total += len(c)
	}
	candidates := make([]int32, 0, total)
	for _, c := range localCands {
		candidates = append(candidates, c...)
	}

	// Stage 3: real distances over the candidate list, shared BSF.
	if len(candidates) > 0 {
		cw := workers
		if cw > len(candidates) {
			cw = len(candidates)
		}
		for w := 0; w < cw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				lo := w * len(candidates) / cw
				hi := (w + 1) * len(candidates) / cw
				var realCount int64
				for _, pos := range candidates[lo:hi] {
					limit := bsf.Load()
					d := ix.realDist(query, int(pos), limit, opt.Kernel)
					realCount++
					if d < limit {
						if bsf.Update(d, int64(pos)) {
							ctrs.AddBSFUpdate()
						}
					}
				}
				ctrs.AddRealDist(realCount)
			}(w)
		}
		wg.Wait()
	}

	d, pos := bsf.Best()
	return core.Match{Position: int(pos), Dist: d}, nil
}

func (ix *Index) realDist(query []float32, pos int, limit float64, k Kernel) float64 {
	if k == KernelSISD {
		return vector.ScalarSquaredEuclideanEarlyAbandon(ix.Data.At(pos), query, limit)
	}
	return vector.SquaredEuclideanEarlyAbandon(ix.Data.At(pos), query, limit)
}

func (ix *Index) queryPAA(query []float32) []float64 {
	out := make([]float64, ix.Schema.Segments)
	seg := len(query) / ix.Schema.Segments
	for i := range out {
		var sum float64
		for _, v := range query[i*seg : (i+1)*seg] {
			sum += float64(v)
		}
		out[i] = sum / float64(seg)
	}
	return out
}

// approxSearch descends to the query's leaf and seeds the BSF, exactly as
// MESSI does (ParIS uses the tree only for this step).
func (ix *Index) approxSearch(query []float32, qpaa []float64, bsf *stats.BSF, k Kernel, ctrs *stats.Counters) {
	qword := ix.Schema.WordFromPAA(qpaa, nil)
	root := ix.Tree.Root(ix.Schema.RootIndex(qword))
	if root == nil {
		best := math.Inf(1)
		for _, slot := range ix.activeRoots {
			r := ix.Tree.Root(int(slot))
			d := ix.Schema.MinDistPAAPrefix(qpaa, r.Symbols, r.Bits)
			ctrs.AddLowerBound(1)
			if d < best {
				best = d
				root = r
			}
		}
	}
	if root == nil {
		return
	}
	leaf := ix.Tree.DescendToLeaf(root, qword)
	for i := 0; i < leaf.LeafLen(); i++ {
		pos := leaf.Positions[i]
		d := ix.realDist(query, int(pos), bsf.Load(), k)
		ctrs.AddRealDist(1)
		if d < bsf.Load() {
			if bsf.Update(d, int64(pos)) {
				ctrs.AddBSFUpdate()
			}
		}
	}
}
