package paris

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pqueue"
	"repro/internal/stats"
	"repro/internal/tree"
)

// SearchTS is ParIS-TS: the paper's "extension of ParIS, where we
// implemented in a parallel fashion the traditional tree-based exact
// search algorithm" (§IV-A). Workers share a single priority queue and
// concurrently (1) insert nodes — inner nodes AND leaves — that cannot be
// pruned on their lower bound, and (2) pop nodes, expanding inner nodes
// and computing real distances for leaves.
//
// The three deliberate differences from MESSI (quoted from the paper):
// MESSI (a) completes the tree pass before any real-distance work,
// (b) inserts only leaves, and (c) re-filters against the BSF when
// popping. ParIS-TS does none of these, which is why it pays more queue
// synchronization and more distance work — the gap Figures 11/12/18 show.
func (ix *Index) SearchTS(query []float32, opt SearchOptions) (core.Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return core.Match{}, err
	}
	if ix.Data.Count() == 0 {
		return core.Match{}, core.ErrEmptyIndex
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = ix.Opts.SearchWorkers
	}
	ctrs := opt.Counters

	qpaa := ix.queryPAA(query)
	bsf := stats.NewBSF()
	ix.approxSearch(query, qpaa, bsf, opt.Kernel, ctrs)

	q := pqueue.New[*tree.Node](256)
	// Seed: all non-prunable root children.
	for _, slot := range ix.activeRoots {
		r := ix.Tree.Root(int(slot))
		d := ix.Schema.MinDistPAAPrefix(qpaa, r.Symbols, r.Bits)
		ctrs.AddLowerBound(1)
		if d < bsf.Load() {
			q.Push(d, r)
		}
	}

	// Producer-consumer best-first search. active counts workers holding
	// a popped node (they may still push children); a worker only
	// terminates when the queue is empty AND no peer is active.
	var active atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ix.tsWorker(q, &active, query, qpaa, bsf, opt.Kernel, ctrs)
		}()
	}
	wg.Wait()

	d, pos := bsf.Best()
	return core.Match{Position: int(pos), Dist: d}, nil
}

func (ix *Index) tsWorker(q *pqueue.Queue[*tree.Node], active *atomic.Int64,
	query []float32, qpaa []float64, bsf *stats.BSF, k Kernel, ctrs *stats.Counters) {

	wordBuf := make([]uint8, ix.Schema.Segments) // per-worker word gather scratch
	for {
		item, ok := q.PopMin()
		if !ok {
			if active.Load() > 0 {
				// A peer may still push work; yield and retry.
				runtime.Gosched()
				continue
			}
			// No active peers: one final race-free re-check (peers push
			// before decrementing active, so an empty queue here is
			// conclusive).
			if item, ok = q.PopMin(); !ok {
				return
			}
		}
		active.Add(1)
		ix.tsProcess(item, q, query, qpaa, wordBuf, bsf, k, ctrs)
		active.Add(-1)
	}
}

func (ix *Index) tsProcess(item pqueue.Item[*tree.Node], q *pqueue.Queue[*tree.Node],
	query []float32, qpaa []float64, wordBuf []uint8, bsf *stats.BSF, k Kernel, ctrs *stats.Counters) {

	node := item.Value
	if item.Priority >= bsf.Load() {
		// Stale bound: drop the node. (Unlike MESSI, the single shared
		// queue cannot be abandoned wholesale — concurrent producers may
		// still insert better nodes — so draining continues.)
		ctrs.AddLeavesPruned(1)
		return
	}
	if !node.IsLeaf() {
		for _, child := range []*tree.Node{node.Left, node.Right} {
			ctrs.AddNodesVisited(1)
			d := ix.Schema.MinDistPAAPrefix(qpaa, child.Symbols, child.Bits)
			ctrs.AddLowerBound(1)
			if d < bsf.Load() {
				q.Push(d, child)
			}
		}
		return
	}
	// Leaf: per-series lower bound, then real distance. The leaf stores
	// words segment-major; ParIS-TS keeps its historical per-entry scalar
	// kernel (that gap is what the ablation measures), so it gathers each
	// word into the worker's scratch buffer.
	w := ix.Schema.Segments
	var lbCount, realCount int64
	for i := 0; i < node.LeafLen(); i++ {
		lbCount++
		lb := ix.Schema.MinDistPAAWord(qpaa, node.Word(i, w, wordBuf))
		limit := bsf.Load()
		if lb >= limit {
			continue
		}
		pos := node.Positions[i]
		d := ix.realDist(query, int(pos), limit, k)
		realCount++
		if d < limit {
			if bsf.Update(d, int64(pos)) {
				ctrs.AddBSFUpdate()
			}
		}
	}
	ctrs.AddLowerBound(lbCount)
	ctrs.AddRealDist(realCount)
}
