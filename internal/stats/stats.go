// Package stats provides the instrumentation used to reproduce the paper's
// measurement figures: atomic operation counters (Figure 17's lower-bound
// and real-distance calculation counts), per-worker phase timers (Figure
// 13's query-time breakdown), and the atomic best-so-far (BSF) cell shared
// by all search workers.
//
// All instrumentation is optional: every method is nil-receiver safe, so
// hot paths pass nil collectors when not measuring.
package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// Counters accumulates operation counts across all workers of one query or
// one build. All fields are atomic; Add* methods are safe for concurrent
// use and are no-ops on a nil receiver.
type Counters struct {
	LowerBoundCalcs atomic.Int64 // MINDIST computations (per-series and per-node)
	RealDistCalcs   atomic.Int64 // raw-series distance computations
	BSFUpdates      atomic.Int64 // successful best-so-far improvements
	NodesVisited    atomic.Int64 // tree nodes touched during traversal
	LeavesInserted  atomic.Int64 // leaves pushed into priority queues
	LeavesPruned    atomic.Int64 // leaves discarded on pop (stale bound)
}

// AddLowerBound adds n lower-bound distance calculations.
func (c *Counters) AddLowerBound(n int64) {
	if c != nil {
		c.LowerBoundCalcs.Add(n)
	}
}

// AddRealDist adds n real distance calculations.
func (c *Counters) AddRealDist(n int64) {
	if c != nil {
		c.RealDistCalcs.Add(n)
	}
}

// AddBSFUpdate records a successful best-so-far improvement.
func (c *Counters) AddBSFUpdate() {
	if c != nil {
		c.BSFUpdates.Add(1)
	}
}

// AddNodesVisited adds n visited tree nodes.
func (c *Counters) AddNodesVisited(n int64) {
	if c != nil {
		c.NodesVisited.Add(n)
	}
}

// AddLeavesInserted adds n queue insertions.
func (c *Counters) AddLeavesInserted(n int64) {
	if c != nil {
		c.LeavesInserted.Add(n)
	}
}

// AddLeavesPruned adds n stale-leaf prunes.
func (c *Counters) AddLeavesPruned(n int64) {
	if c != nil {
		c.LeavesPruned.Add(n)
	}
}

// Snapshot is a plain-value copy of the counters.
type Snapshot struct {
	LowerBoundCalcs int64
	RealDistCalcs   int64
	BSFUpdates      int64
	NodesVisited    int64
	LeavesInserted  int64
	LeavesPruned    int64
}

// Snapshot returns the current values; zero Snapshot on nil receiver.
func (c *Counters) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	return Snapshot{
		LowerBoundCalcs: c.LowerBoundCalcs.Load(),
		RealDistCalcs:   c.RealDistCalcs.Load(),
		BSFUpdates:      c.BSFUpdates.Load(),
		NodesVisited:    c.NodesVisited.Load(),
		LeavesInserted:  c.LeavesInserted.Load(),
		LeavesPruned:    c.LeavesPruned.Load(),
	}
}

// Add accumulates another snapshot into s.
func (s *Snapshot) Add(o Snapshot) {
	s.LowerBoundCalcs += o.LowerBoundCalcs
	s.RealDistCalcs += o.RealDistCalcs
	s.BSFUpdates += o.BSFUpdates
	s.NodesVisited += o.NodesVisited
	s.LeavesInserted += o.LeavesInserted
	s.LeavesPruned += o.LeavesPruned
}

// BSF is the shared best-so-far distance cell (squared distance plus the
// position of the series achieving it). The paper protects the BSF with a
// lock; we keep the hot pruning path a single atomic load — every node
// and every series comparison reads it — by caching the distance bits in
// their own cell (non-negative IEEE-754 floats order identically to their
// bit patterns, so a numeric min is a bitwise min), while the (dist, pos)
// PAIR is published together through a pointer CAS. Two racing
// improvements can therefore never leave one update's distance paired
// with the other's position — which matters once a BSF fuses the answer
// of several shards' worker fleets, not just one run's.
type BSF struct {
	bits atomic.Uint64          // monotone min cache of best.dist, for Load
	best atomic.Pointer[bsfRec] // consistent (dist, pos), source of truth
}

// bsfRec is one immutable published improvement.
type bsfRec struct {
	dist float64
	pos  int64
}

// NewBSF returns a BSF initialized to +Inf / position -1.
func NewBSF() *BSF {
	b := &BSF{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	b.best.Store(&bsfRec{dist: math.Inf(1), pos: -1})
	return b
}

// Load returns the current squared best-so-far pruning threshold. It may
// momentarily lag an in-flight Update (a stale, larger threshold only
// admits extra candidates, never wrongly prunes); once updates quiesce it
// equals Best's distance exactly.
func (b *BSF) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Best returns the current squared distance and the position achieving
// it. The pair is read atomically together.
func (b *BSF) Best() (dist float64, pos int64) {
	r := b.best.Load()
	return r.dist, r.pos
}

// Update lowers the BSF to dist (with the achieving position) if dist is
// an improvement. It reports whether the value was updated. dist must be
// non-negative (squared distances always are).
func (b *BSF) Update(dist float64, pos int64) bool {
	var rec *bsfRec
	for {
		cur := b.best.Load()
		if dist >= cur.dist {
			return false
		}
		if rec == nil {
			rec = &bsfRec{dist: dist, pos: pos}
		}
		if b.best.CompareAndSwap(cur, rec) {
			break
		}
	}
	// Lower the pruning cache monotonically; a concurrent better update
	// may already have driven it below dist, in which case leave it.
	newBits := math.Float64bits(dist)
	for {
		cur := b.bits.Load()
		if newBits >= cur || b.bits.CompareAndSwap(cur, newBits) {
			return true
		}
	}
}

// Phase identifies one component of query answering time, matching the
// breakdown of Figure 13.
type Phase int

// The phases of Figure 13.
const (
	PhaseInit     Phase = iota // BSF initialization (approximate search)
	PhaseTreePass              // index traversal computing node lower bounds
	PhasePQInsert              // priority queue insertions
	PhasePQRemove              // priority queue removals
	PhaseDistCalc              // lower-bound + real distance calculations
	NumPhases
)

// String returns the paper's label for the phase.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "Initialization"
	case PhaseTreePass:
		return "MESSI tree pass"
	case PhasePQInsert:
		return "PQ insert node"
	case PhasePQRemove:
		return "PQ remove node"
	case PhaseDistCalc:
		return "Distance calculation"
	default:
		return "Unknown"
	}
}

// Breakdown accumulates wall time per phase. One Breakdown is shared by
// all workers of a query (atomic adds); a nil Breakdown disables timing
// entirely (the hot paths skip the clock reads).
type Breakdown struct {
	nanos [NumPhases]atomic.Int64
}

// Enabled reports whether timing is active (non-nil receiver).
func (b *Breakdown) Enabled() bool { return b != nil }

// Add records d against phase p; no-op on nil receiver.
func (b *Breakdown) Add(p Phase, d time.Duration) {
	if b != nil {
		b.nanos[p].Add(int64(d))
	}
}

// Get returns the accumulated duration of phase p.
func (b *Breakdown) Get(p Phase) time.Duration {
	if b == nil {
		return 0
	}
	return time.Duration(b.nanos[p].Load())
}

// Total returns the sum over all phases.
func (b *Breakdown) Total() time.Duration {
	if b == nil {
		return 0
	}
	var t time.Duration
	for p := Phase(0); p < NumPhases; p++ {
		t += b.Get(p)
	}
	return t
}
