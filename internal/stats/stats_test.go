package stats

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func TestCountersNilSafe(t *testing.T) {
	var c *Counters
	c.AddLowerBound(5)
	c.AddRealDist(3)
	c.AddBSFUpdate()
	c.AddNodesVisited(1)
	c.AddLeavesInserted(1)
	c.AddLeavesPruned(1)
	if s := c.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil counters snapshot = %+v, want zero", s)
	}
}

func TestCountersAccumulate(t *testing.T) {
	c := &Counters{}
	c.AddLowerBound(5)
	c.AddLowerBound(2)
	c.AddRealDist(3)
	c.AddBSFUpdate()
	c.AddNodesVisited(4)
	c.AddLeavesInserted(6)
	c.AddLeavesPruned(7)
	s := c.Snapshot()
	want := Snapshot{LowerBoundCalcs: 7, RealDistCalcs: 3, BSFUpdates: 1,
		NodesVisited: 4, LeavesInserted: 6, LeavesPruned: 7}
	if s != want {
		t.Errorf("snapshot = %+v, want %+v", s, want)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{LowerBoundCalcs: 1, RealDistCalcs: 2}
	a.Add(Snapshot{LowerBoundCalcs: 10, BSFUpdates: 3})
	if a.LowerBoundCalcs != 11 || a.RealDistCalcs != 2 || a.BSFUpdates != 3 {
		t.Errorf("Add result %+v", a)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := &Counters{}
	var wg sync.WaitGroup
	const workers = 8
	const per = 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.AddLowerBound(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().LowerBoundCalcs; got != workers*per {
		t.Errorf("LowerBoundCalcs = %d, want %d", got, workers*per)
	}
}

func TestBSFInitial(t *testing.T) {
	b := NewBSF()
	if !math.IsInf(b.Load(), 1) {
		t.Errorf("initial BSF = %v, want +Inf", b.Load())
	}
	if _, pos := b.Best(); pos != -1 {
		t.Errorf("initial pos = %d, want -1", pos)
	}
}

func TestBSFUpdateMonotone(t *testing.T) {
	b := NewBSF()
	if !b.Update(10, 1) {
		t.Error("first update should succeed")
	}
	if b.Update(10, 2) {
		t.Error("equal update should fail")
	}
	if b.Update(11, 3) {
		t.Error("worse update should fail")
	}
	if !b.Update(5, 4) {
		t.Error("better update should succeed")
	}
	d, pos := b.Best()
	if d != 5 || pos != 4 {
		t.Errorf("Best = (%v,%d), want (5,4)", d, pos)
	}
}

func TestBSFZeroDistance(t *testing.T) {
	b := NewBSF()
	if !b.Update(0, 7) {
		t.Error("zero-distance update should succeed")
	}
	if b.Load() != 0 {
		t.Errorf("BSF = %v, want 0", b.Load())
	}
	if b.Update(0, 8) {
		t.Error("repeated zero should not update")
	}
}

// Concurrent updates must converge to the global minimum.
func TestBSFConcurrentMin(t *testing.T) {
	b := NewBSF()
	const workers = 8
	const per = 2000
	vals := make([][]float64, workers)
	globalMin := math.Inf(1)
	for w := range vals {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		vals[w] = make([]float64, per)
		for i := range vals[w] {
			vals[w][i] = rng.Float64() * 1000
			if vals[w][i] < globalMin {
				globalMin = vals[w][i]
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, v := range vals[w] {
				b.Update(v, int64(w*per+i))
			}
		}(w)
	}
	wg.Wait()
	if b.Load() != globalMin {
		t.Errorf("converged BSF = %v, want %v", b.Load(), globalMin)
	}
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseInit:     "Initialization",
		PhaseTreePass: "MESSI tree pass",
		PhasePQInsert: "PQ insert node",
		PhasePQRemove: "PQ remove node",
		PhaseDistCalc: "Distance calculation",
		Phase(99):     "Unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestBreakdownNilSafe(t *testing.T) {
	var b *Breakdown
	if b.Enabled() {
		t.Error("nil breakdown should be disabled")
	}
	b.Add(PhaseInit, time.Second) // must not panic
	if b.Get(PhaseInit) != 0 || b.Total() != 0 {
		t.Error("nil breakdown should read zero")
	}
}

func TestBreakdownAccumulates(t *testing.T) {
	b := &Breakdown{}
	if !b.Enabled() {
		t.Error("non-nil breakdown should be enabled")
	}
	b.Add(PhaseTreePass, 2*time.Millisecond)
	b.Add(PhaseTreePass, 3*time.Millisecond)
	b.Add(PhaseDistCalc, 5*time.Millisecond)
	if got := b.Get(PhaseTreePass); got != 5*time.Millisecond {
		t.Errorf("tree pass = %v", got)
	}
	if got := b.Total(); got != 10*time.Millisecond {
		t.Errorf("total = %v", got)
	}
}

func TestBreakdownConcurrent(t *testing.T) {
	b := &Breakdown{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(PhasePQInsert, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := b.Get(PhasePQInsert); got != 800*time.Microsecond {
		t.Errorf("concurrent accumulate = %v, want 800µs", got)
	}
}
