package shard

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dtw"
	"repro/internal/series"
)

const (
	testSeries = 3000
	testLength = 64
	testLeaf   = 64
)

func testData(t testing.TB, n int) *series.Collection {
	t.Helper()
	col, err := dataset.Generate(dataset.RandomWalk, n, testLength, 7)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func testQueries(t testing.TB, n int) *series.Collection {
	t.Helper()
	col, err := dataset.Queries(dataset.RandomWalk, n, testLength, 1007)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func testOpts() core.Options {
	return core.Options{LeafCapacity: testLeaf, SearchWorkers: 8, IndexWorkers: 8}
}

// TestEquivalence pins the tentpole contract: for S ∈ {2,4,8}, the sharded
// index answers 1-NN, k-NN and DTW queries bitwise-identically to a single
// index over the same collection.
func TestEquivalence(t *testing.T) {
	data := testData(t, testSeries)
	queries := testQueries(t, 10)
	single, err := Build(data, 1, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	window := dtw.WindowSize(testLength, 0.1)

	for _, S := range []int{2, 4, 8} {
		sharded, err := Build(data, S, testOpts())
		if err != nil {
			t.Fatalf("S=%d: %v", S, err)
		}
		if sharded.Len() != single.Len() || sharded.NumShards() != S {
			t.Fatalf("S=%d: len %d shards %d", S, sharded.Len(), sharded.NumShards())
		}
		for qi := 0; qi < queries.Count(); qi++ {
			q := queries.At(qi)

			want, err := single.Search(q, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := sharded.Search(q, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("S=%d query %d: 1-NN %+v, single-shard %+v", S, qi, got, want)
			}

			wantK, err := single.SearchKNN(q, 10, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotK, err := sharded.SearchKNN(q, 10, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(gotK) != len(wantK) {
				t.Fatalf("S=%d query %d: k-NN returned %d matches, want %d", S, qi, len(gotK), len(wantK))
			}
			for i := range gotK {
				if gotK[i] != wantK[i] {
					t.Fatalf("S=%d query %d: k-NN match %d is %+v, single-shard %+v", S, qi, i, gotK[i], wantK[i])
				}
			}

			wantD, err := single.SearchDTW(q, window, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			gotD, err := sharded.SearchDTW(q, window, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if gotD != wantD {
				t.Fatalf("S=%d query %d: DTW %+v, single-shard %+v", S, qi, gotD, wantD)
			}
		}
	}
}

// TestSeeds: seeds (global positions, possibly outside the collection)
// participate in sharded answers exactly as in unsharded ones.
func TestSeeds(t *testing.T) {
	data := testData(t, testSeries)
	queries := testQueries(t, 4)
	sharded, err := Build(data, 4, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := queries.At(0)
	// A seed better than anything indexed must win all three searches.
	seed := []core.Match{{Position: 999_999, Dist: 0}}
	m, err := sharded.Search(q, core.SearchOptions{Seeds: seed})
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 999_999 || m.Dist != 0 {
		t.Fatalf("winning seed not returned by 1-NN: %+v", m)
	}
	md, err := sharded.SearchDTW(q, dtw.WindowSize(testLength, 0.1), core.SearchOptions{Seeds: seed})
	if err != nil {
		t.Fatal(err)
	}
	if md.Position != 999_999 {
		t.Fatalf("winning seed not returned by DTW: %+v", md)
	}
	ms, err := sharded.SearchKNN(q, 3, core.SearchOptions{Seeds: seed})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || ms[0].Position != 999_999 {
		t.Fatalf("winning seed not first in k-NN: %+v", ms)
	}
	// The seed is handed to every shard; it must appear exactly once.
	for _, m := range ms[1:] {
		if m.Position == 999_999 {
			t.Fatalf("seed duplicated in merged k-NN results: %+v", ms)
		}
	}
}

// TestAtMapping: the global position space round-trips through the shards.
func TestAtMapping(t *testing.T) {
	data := testData(t, 257) // deliberately not a multiple of the shard count
	x, err := Build(data, 4, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < data.Count(); p++ {
		got := x.At(p)
		want := data.At(p)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("position %d: shard view differs from source at point %d", p, i)
			}
		}
	}
	if st := x.Stats(); st.Series != 257 {
		t.Fatalf("aggregate stats count %d series, want 257", st.Series)
	}
	if ss := x.ShardStats(); len(ss) != 4 || ss[0].Series != 65 || ss[3].Series != 64 {
		t.Fatalf("per-shard stats %+v", ss)
	}
}

// TestFewerSeriesThanShards: shards beyond the series count stay nil and
// queries still work.
func TestFewerSeriesThanShards(t *testing.T) {
	data := testData(t, 3)
	x, err := Build(data, 8, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if x.Shard(5) != nil {
		t.Fatal("shard beyond the series count is non-nil")
	}
	q := make([]float32, testLength)
	copy(q, data.At(2))
	m, err := x.Search(q, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 2 || m.Dist != 0 {
		t.Fatalf("self-query answered %+v", m)
	}
	ms, err := x.SearchKNN(q, 10, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("k-NN over 3 series returned %d matches", len(ms))
	}
}

// TestFromCoresValidation: mismatched partitions are rejected.
func TestFromCoresValidation(t *testing.T) {
	data := testData(t, 100)
	x, err := Build(data, 2, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCores([]*core.Index{x.Shard(0), x.Shard(1)}); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	// Swapped shards break the round-robin counts only when uneven;
	// a missing shard always does.
	if _, err := FromCores([]*core.Index{x.Shard(0), nil}); err == nil {
		t.Fatal("partition with a missing shard accepted")
	}
	if _, err := FromCores([]*core.Index{nil, nil}); err == nil {
		t.Fatal("all-empty partition accepted")
	}
	if _, err := FromCores(nil); err == nil {
		t.Fatal("zero shards accepted")
	}
}

// TestBuildValidation covers the construction error paths.
func TestBuildValidation(t *testing.T) {
	data := testData(t, 10)
	if _, err := Build(nil, 2, testOpts()); err == nil {
		t.Fatal("nil collection accepted")
	}
	if _, err := Build(data, 0, testOpts()); err == nil {
		t.Fatal("zero shards accepted")
	}
	if _, err := Build(data, MaxShards+1, testOpts()); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}

// TestApproxSearch: the sharded approximate answer is a valid upper bound
// and finds exact self-matches.
func TestApproxSearch(t *testing.T) {
	data := testData(t, testSeries)
	x, err := Build(data, 4, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	q := make([]float32, testLength)
	copy(q, data.At(123))
	m, err := x.ApproxSearch(q, core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Dist != 0 || m.Position != 123 {
		t.Fatalf("approx self-query answered %+v", m)
	}
	exact, err := x.Search(data.At(7), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := x.ApproxSearch(data.At(7), core.SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Dist < exact.Dist || math.IsInf(approx.Dist, 1) {
		t.Fatalf("approx distance %v not an upper bound of exact %v", approx.Dist, exact.Dist)
	}
}
