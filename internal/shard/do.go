package shard

import (
	"fmt"

	"repro/internal/core"
)

// ApproxKNN fans the approximate k-NN search out across the shards and
// merges the per-shard sets — the k-NN form of ApproxSearch.
func (x *Index) ApproxKNN(query []float32, k int, opt core.SearchOptions) ([]core.Match, error) {
	if single := x.Single(); single != nil {
		return single.ApproxKNN(query, k, opt)
	}
	S := len(x.shards)
	perShard := make([][]core.Match, S)
	err := x.forEachShard(func(s int, sh *core.Index) error {
		o := opt
		o.GlobalPos = globalPos(s, S)
		ms, err := sh.ApproxKNN(query, k, o)
		perShard[s] = ms
		return err
	})
	if err != nil {
		return nil, err
	}
	return MergeKNN(perShard, k), nil
}

// ApproxDTW fans the approximate DTW search out across the shards and
// returns the best per-shard answer — the DTW form of ApproxSearch.
func (x *Index) ApproxDTW(query []float32, window int, opt core.SearchOptions) (core.Match, error) {
	if single := x.Single(); single != nil {
		return single.ApproxDTW(query, window, opt)
	}
	best := make([]core.Match, len(x.shards))
	err := x.forEachShard(func(s int, sh *core.Index) error {
		o := opt
		o.GlobalPos = globalPos(s, len(x.shards))
		m, err := sh.ApproxDTW(query, window, o)
		best[s] = m
		return err
	})
	if err != nil {
		return core.Match{}, err
	}
	out := core.Match{Position: -1}
	for s, sh := range x.shards {
		if sh == nil {
			continue
		}
		if out.Position < 0 || best[s].Dist < out.Dist {
			out = best[s]
		}
	}
	return out, nil
}

// Do serves one quality-of-service request on this index: the single entry
// point behind which exact, approximate, ε-bounded, and deadline-bounded
// answers share the same machinery. The request's QoS state (built here)
// is threaded through every shard of the fan-out via the options struct,
// exactly like the shared best-so-far, so ε-pruning witnesses and stop
// checks act globally. Matches carry squared distances (like Match).
func (x *Index) Do(req core.Request, opt core.SearchOptions) (core.Result, error) {
	if err := req.Validate(); err != nil {
		return core.Result{}, err
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	if req.DTW && k > 1 {
		return core.Result{}, fmt.Errorf("shard: k-NN under DTW is not supported (k=%d)", k)
	}
	if req.Counters != nil {
		opt.Counters = req.Counters
	}
	if req.Breakdown != nil {
		opt.Breakdown = req.Breakdown
	}
	qos := req.NewQoS()
	opt.QoS = qos

	var matches []core.Match
	var err error
	if req.Mode == core.ModeApprox {
		switch {
		case req.DTW:
			var m core.Match
			m, err = x.ApproxDTW(req.Query, req.Window, opt)
			matches = []core.Match{m}
		case k > 1:
			matches, err = x.ApproxKNN(req.Query, k, opt)
		default:
			var m core.Match
			m, err = x.ApproxSearch(req.Query, opt)
			matches = []core.Match{m}
		}
	} else {
		// Exact, ε-bounded, and deadline-bounded answers all run the exact
		// algorithm; the QoS state (nil for plain exact) adjusts pruning
		// and stopping.
		switch {
		case req.DTW:
			var m core.Match
			m, err = x.SearchDTW(req.Query, req.Window, opt)
			matches = []core.Match{m}
		case k > 1:
			matches, err = x.SearchKNN(req.Query, k, opt)
		default:
			var m core.Match
			m, err = x.Search(req.Query, opt)
			matches = []core.Match{m}
		}
	}
	if err != nil {
		return core.Result{}, err
	}
	return qos.Finish(matches, req.Mode), nil
}
