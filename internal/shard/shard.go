package shard

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/pqueue"
	"repro/internal/series"
	"repro/internal/stats"
	"repro/internal/tree"
)

// MaxShards bounds the shard count: beyond a few hundred independent
// trees, per-shard overheads (root fanout allocations, fan-out goroutines)
// dominate any locality win.
const MaxShards = 256

// Index is a sharded MESSI index: S independent core indexes over a
// round-robin partition of one logical collection. It is immutable after
// Build and safe for concurrent queries.
type Index struct {
	shards []*core.Index // shards[s] may be nil when count <= s (fewer series than shards)
	count  int           // total series across all shards
	length int           // points per series
	opts   core.Options  // effective caller options (per-shard IndexWorkers are divided)
}

// SliceLen returns how many of n round-robin-partitioned series land in
// shard s: the size of {p < n : p%S == s}.
func SliceLen(n, s, S int) int {
	if n <= s {
		return 0
	}
	return (n - s + S - 1) / S
}

// globalPos maps shard s's local position to the collection-global one.
func globalPos(s, S int) func(int64) int64 {
	s64, stride := int64(s), int64(S)
	return func(local int64) int64 { return local*stride + s64 }
}

// Build partitions the collection into S shards and builds them
// concurrently, each with the paper's two-phase parallel pipeline. S == 1
// retains the collection without copying (like core.Build); S > 1 copies
// each series into its shard's contiguous storage. Construction workers
// are divided across shards so total build parallelism matches the
// unsharded build.
func Build(data *series.Collection, shards int, opts core.Options) (*Index, error) {
	if data == nil || data.Count() == 0 {
		return nil, fmt.Errorf("shard: cannot build an index over an empty collection")
	}
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", shards, MaxShards)
	}
	opts = core.FillDefaults(opts)
	if shards == 1 {
		ix, err := core.Build(data, opts)
		if err != nil {
			return nil, err
		}
		return Wrap(ix), nil
	}

	n, length := data.Count(), data.Length
	flats := AllocSlices(n, shards, length)
	fill := make([]int, shards)
	for p := 0; p < n; p++ {
		s := p % shards
		copy(flats[s][fill[s]:fill[s]+length], data.At(p))
		fill[s] += length
	}
	return BuildFlats(flats, n, length, opts)
}

// AllocSlices allocates per-shard flat storage for n round-robin-
// partitioned series of the given length (nil entries for empty slices) —
// the buffers callers fill before BuildFlats.
func AllocSlices(n, shards, length int) [][]float32 {
	flats := make([][]float32, shards)
	for s := range flats {
		if c := SliceLen(n, s, shards); c > 0 {
			flats[s] = make([]float32, c*length)
		}
	}
	return flats
}

// BuildFlats builds an Index from already-partitioned per-shard flat
// storage (flats[s] holds shard s's round-robin slice contiguously; nil
// where that slice is empty — the shape AllocSlices produces). The shards
// are built concurrently, each with the construction workers divided by
// the shard count; flats is retained by the index without copying. This
// is the one shared scaffolding under both the static Build and the live
// index's per-shard generational rebuild.
func BuildFlats(flats [][]float32, count, length int, opts core.Options) (*Index, error) {
	shards := len(flats)
	if shards < 1 || shards > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", shards, MaxShards)
	}
	opts = core.FillDefaults(opts)
	perShard := opts
	perShard.IndexWorkers = (opts.IndexWorkers + shards - 1) / shards

	x := &Index{shards: make([]*core.Index, shards), count: count, length: length, opts: opts}
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		if flats[s] == nil {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			col, err := series.NewCollection(flats[s], length)
			if err == nil {
				x.shards[s], err = core.Build(col, perShard)
			}
			errs[s] = err
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", s, err)
		}
	}
	if got := x.recount(); got != count {
		return nil, fmt.Errorf("shard: flats hold %d series, caller declared %d", got, count)
	}
	return x, nil
}

// recount sums the shard collections' sizes.
func (x *Index) recount() int {
	total := 0
	for _, sh := range x.shards {
		if sh != nil {
			total += sh.Data.Count()
		}
	}
	return total
}

// Wrap presents an already-built single index as a 1-shard Index (no
// copying; the fan-out machinery short-circuits to direct calls).
// Wrapping nil returns nil.
func Wrap(ix *core.Index) *Index {
	if ix == nil {
		return nil
	}
	return &Index{
		shards: []*core.Index{ix},
		count:  ix.Data.Count(),
		length: ix.Data.Length,
		opts:   ix.Opts,
	}
}

// FromCores assembles an Index from per-shard core indexes (a parallel
// snapshot load). cores[s] must hold exactly the round-robin slice of
// shard s — nil entries are allowed only where that slice is empty — and
// every shard must agree on series length and structural options.
func FromCores(cores []*core.Index) (*Index, error) {
	S := len(cores)
	if S < 1 || S > MaxShards {
		return nil, fmt.Errorf("shard: shard count %d out of range [1,%d]", S, MaxShards)
	}
	if S == 1 {
		if cores[0] == nil {
			return nil, fmt.Errorf("shard: single shard is nil")
		}
		return Wrap(cores[0]), nil
	}
	count := 0
	length := -1
	var opts core.Options
	for s, c := range cores {
		if c == nil {
			continue
		}
		if length == -1 {
			length = c.Data.Length
			opts = c.Opts
		}
		if c.Data.Length != length {
			return nil, fmt.Errorf("shard: shard %d has series length %d, shard 0 has %d", s, c.Data.Length, length)
		}
		if c.Opts.Segments != opts.Segments || c.Opts.CardBits != opts.CardBits || c.Opts.LeafCapacity != opts.LeafCapacity {
			return nil, fmt.Errorf("shard: shard %d was built with different structural options", s)
		}
		count += c.Data.Count()
	}
	if count == 0 {
		return nil, fmt.Errorf("shard: all %d shards are empty", S)
	}
	for s, c := range cores {
		want := SliceLen(count, s, S)
		got := 0
		if c != nil {
			got = c.Data.Count()
		}
		if got != want {
			return nil, fmt.Errorf("shard: shard %d holds %d series, round-robin partition of %d over %d shards requires %d",
				s, got, count, S, want)
		}
	}
	return &Index{shards: cores, count: count, length: length, opts: opts}, nil
}

// NumShards reports the shard count S.
func (x *Index) NumShards() int { return len(x.shards) }

// Shard returns shard s's core index (nil when that slice is empty).
func (x *Index) Shard(s int) *core.Index { return x.shards[s] }

// Single returns the underlying core index when S == 1, nil otherwise —
// the fast path for layers that special-case the unsharded shape.
func (x *Index) Single() *core.Index {
	if len(x.shards) == 1 {
		return x.shards[0]
	}
	return nil
}

// Len reports the total number of indexed series.
func (x *Index) Len() int { return x.count }

// SeriesLen reports the length (points) of each indexed series.
func (x *Index) SeriesLen() int { return x.length }

// Opts returns the effective (defaulted) construction options.
func (x *Index) Opts() core.Options { return x.opts }

// GlobalPosFunc returns shard s's local→global position mapping, for
// callers (the query engine) building per-shard runs themselves. For a
// single shard it returns nil (the identity), keeping that path free of
// mapping overhead.
func (x *Index) GlobalPosFunc(s int) func(int64) int64 {
	if len(x.shards) == 1 {
		return nil
	}
	return globalPos(s, len(x.shards))
}

// At returns (a view of) the series at the given global position.
func (x *Index) At(pos int) []float32 {
	S := len(x.shards)
	return x.shards[pos%S].Data.At(pos / S)
}

// Stats aggregates tree shape statistics across the shards: counts sum,
// depths and fills take the max.
func (x *Index) Stats() tree.Stats {
	var agg tree.Stats
	for _, sh := range x.shards {
		if sh == nil {
			continue
		}
		st := sh.Stats()
		agg.Series += st.Series
		agg.RootChildren += st.RootChildren
		agg.InternalNodes += st.InternalNodes
		agg.Leaves += st.Leaves
		if st.MaxDepth > agg.MaxDepth {
			agg.MaxDepth = st.MaxDepth
		}
		if st.MaxLeafFill > agg.MaxLeafFill {
			agg.MaxLeafFill = st.MaxLeafFill
		}
	}
	return agg
}

// ShardStats returns each shard's own tree statistics (zero value for
// empty shards).
func (x *Index) ShardStats() []tree.Stats {
	out := make([]tree.Stats, len(x.shards))
	for s, sh := range x.shards {
		if sh != nil {
			out[s] = sh.Stats()
		}
	}
	return out
}

// fanOpt derives shard s's search options from the caller's: the shared
// bound and position mapping are installed, seeds are stripped (the
// caller applies them to the shared bound once), and the worker budget is
// divided across shards so the fan-out spawns the same total parallelism
// as one unsharded search.
func (x *Index) fanOpt(opt core.SearchOptions, s int, shared *stats.BSF) core.SearchOptions {
	S := len(x.shards)
	workers := opt.Workers
	if workers <= 0 {
		workers = x.opts.SearchWorkers
	}
	opt.Workers = (workers + S - 1) / S
	opt.Shared = shared
	opt.GlobalPos = globalPos(s, S)
	opt.Seeds = nil
	return opt
}

// forEachShard runs fn concurrently over every non-empty shard and
// returns the first error.
func (x *Index) forEachShard(fn func(s int, sh *core.Index) error) error {
	errs := make([]error, len(x.shards))
	var wg sync.WaitGroup
	for s, sh := range x.shards {
		if sh == nil {
			continue
		}
		wg.Add(1)
		go func(s int, sh *core.Index) {
			defer wg.Done()
			errs[s] = fn(s, sh)
		}(s, sh)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: shard %d: %w", s, err)
		}
	}
	return nil
}

// Search answers an exact 1-NN query by fanning out across the shards
// with one shared best-so-far. Answers are identical to a single index
// over the whole collection; positions are global.
func (x *Index) Search(query []float32, opt core.SearchOptions) (core.Match, error) {
	if single := x.Single(); single != nil {
		return single.Search(query, opt)
	}
	shared := stats.NewBSF()
	for _, s := range opt.Seeds {
		shared.Update(s.Dist, int64(s.Position))
	}
	err := x.forEachShard(func(s int, sh *core.Index) error {
		_, err := sh.Search(query, x.fanOpt(opt, s, shared))
		return err
	})
	if err != nil {
		return core.Match{}, err
	}
	d, pos := shared.Best()
	return core.Match{Position: int(pos), Dist: d}, nil
}

// ApproxSearch fans the approximate search out across the shards and
// returns the best of the per-shard approximate answers. Like the
// unsharded version, its distance is an upper bound on the exact one.
func (x *Index) ApproxSearch(query []float32, opt core.SearchOptions) (core.Match, error) {
	if single := x.Single(); single != nil {
		return single.ApproxSearch(query, opt)
	}
	best := make([]core.Match, len(x.shards))
	err := x.forEachShard(func(s int, sh *core.Index) error {
		o := opt
		o.GlobalPos = globalPos(s, len(x.shards))
		m, err := sh.ApproxSearch(query, o)
		best[s] = m
		return err
	})
	if err != nil {
		return core.Match{}, err
	}
	out := core.Match{Position: -1}
	for s, sh := range x.shards {
		if sh == nil {
			continue
		}
		if out.Position < 0 || best[s].Dist < out.Dist {
			out = best[s]
		}
	}
	return out, nil
}

// SearchKNN answers an exact k-NN query: every shard computes its own
// top-k concurrently (each seeded with the caller's seeds, so delta
// matches prune everywhere) and the per-shard sets are merged through a
// priority queue. The result is at most k matches in ascending distance
// order, ties broken by (global) position — the same contract as the
// unsharded search.
func (x *Index) SearchKNN(query []float32, k int, opt core.SearchOptions) ([]core.Match, error) {
	if single := x.Single(); single != nil {
		return single.SearchKNN(query, k, opt)
	}
	S := len(x.shards)
	perShard := make([][]core.Match, S)
	err := x.forEachShard(func(s int, sh *core.Index) error {
		o := x.fanOpt(opt, s, nil)
		o.Seeds = opt.Seeds // global positions participate in every shard's set
		ms, err := sh.SearchKNN(query, k, o)
		perShard[s] = ms
		return err
	})
	if err != nil {
		return nil, err
	}
	return MergeKNN(perShard, k), nil
}

// MergeKNN merges per-shard k-NN result lists into the global top k
// through a priority queue, deduplicating by position (seeds handed to
// every shard appear in several lists). Matches are returned in ascending
// distance order, ties broken by position.
func MergeKNN(lists [][]core.Match, k int) []core.Match {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	q := pqueue.New[core.Match](total)
	for _, l := range lists {
		for _, m := range l {
			q.Push(m.Dist, m)
		}
	}
	out := make([]core.Match, 0, k)
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		item, ok := q.PopMin()
		if !ok {
			break
		}
		if _, dup := seen[item.Value.Position]; dup {
			continue
		}
		seen[item.Value.Position] = struct{}{}
		out = append(out, item.Value)
	}
	// The queue orders by distance only; pin the tie order to the
	// unsharded contract (ascending position within equal distances).
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Position < out[j].Position
	})
	return out
}

// SearchDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba band of the given radius (points), fanning out across the
// shards with one shared best-so-far.
func (x *Index) SearchDTW(query []float32, window int, opt core.SearchOptions) (core.Match, error) {
	if single := x.Single(); single != nil {
		return single.SearchDTW(query, window, opt)
	}
	shared := stats.NewBSF()
	for _, s := range opt.Seeds {
		shared.Update(s.Dist, int64(s.Position))
	}
	err := x.forEachShard(func(s int, sh *core.Index) error {
		_, err := sh.SearchDTW(query, window, x.fanOpt(opt, s, shared))
		return err
	})
	if err != nil {
		return core.Match{}, err
	}
	d, pos := shared.Best()
	return core.Match{Position: int(pos), Dist: d}, nil
}
