// Package shard partitions a series collection across S independent MESSI
// indexes (ParIS+-style: one index structure per slice of the data) and
// answers queries by fanning out across the shards.
//
// Series are routed round-robin: global position p lives in shard p%S at
// local position p/S, so the local↔global mapping is pure arithmetic and
// stays stable as the collection grows — a live index appending series
// keeps the same routing forever, and a generational rebuild touches each
// shard's O(n/S) slice instead of one O(n) tree.
//
// Exact fan-out queries thread one shared atomic best-so-far through every
// shard's search (core.SearchOptions.Shared/GlobalPos): a tight bound found
// in shard 0 immediately prunes the tree traversals and leaf scans of
// shards 1..S-1, so the fan-out does the same total pruning work as one big
// tree. k-NN answers are merged from the per-shard top-k sets through a
// priority queue. Answers are identical to a single index built over the
// whole collection.
//
// # Concurrency invariants
//
//   - A built Index is immutable; all query methods are safe for
//     unlimited concurrent use, like the core indexes they wrap.
//   - The shared best-so-far is the only cross-shard communication during
//     a query. Its updates are lock-free and monotone decreasing
//     (stats.BSF): shards racing to publish improvements can only
//     tighten pruning, never loosen it, so fan-out answers are
//     deterministic even though the interleaving is not.
//   - Shard construction is concurrent (one builder per shard); Build
//     returns only after every shard finishes, so no query observes a
//     partially built shard.
package shard
