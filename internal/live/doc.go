// Package live implements a mutable MESSI index as a layered system over
// the immutable core: freshly appended series land in a concurrent delta
// buffer (internal/delta) and are answered by exact brute-force scan
// (internal/scan), while the bulk of the data lives in an immutable
// core.Index generation queried through the persistent engine
// (internal/engine). A query fuses the two paths by scanning the delta
// first and seeding the tree search's pruning bound with the delta's best
// matches — the delta answer both participates in the result and tightens
// tree pruning.
//
// When the delta exceeds a configurable threshold, a background rebuild
// merges it with the current generation into a new core.Index using the
// paper's parallel construction, then atomically swaps the generation in
// (RCU-style: the view — generation + frozen delta + active delta — is an
// immutable value behind an atomic pointer). In-flight queries finish on
// the view they loaded; appends arriving during the rebuild go to a fresh
// active delta and become part of the next generation. Neither queries
// nor appends ever block on a rebuild.
//
// Positions are stable across rebuilds: series are numbered in append
// order (the initial collection first), and the merge preserves that
// order, so a position handed out by Append refers to the same series
// forever.
//
// # Generation swap rules
//
//   - The view pointer is the single source of truth. A query loads it
//     once and uses that consistent (generation, frozen delta, active
//     delta) triple for its whole execution; it never re-loads mid-query.
//   - Only the rebuild goroutine swaps the pointer, and only after the
//     new generation is fully built, so readers observe either the old
//     complete view or the new complete view — never a partial one.
//   - At most one rebuild runs at a time; a threshold crossing during an
//     active rebuild marks it pending rather than starting a second.
//   - The frozen delta stays queryable until the swap lands; the series
//     it holds are in exactly one of {frozen delta, new generation} from
//     any reader's perspective, so answers neither miss nor duplicate a
//     series.
package live
