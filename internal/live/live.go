package live

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/isax"
	"repro/internal/metrics"
	"repro/internal/scan"
	"repro/internal/series"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tree"
	"repro/internal/wal"
)

// fpRebuild fires inside the background generation merge, where crash
// tests inject rebuild failures (and panics) to exercise the frozen
// delta staying searchable and the bounded retry path.
var fpRebuild = fault.Register("live.rebuild")

// DefaultRebuildThreshold is the default number of active-delta series
// that triggers a background generation rebuild.
const DefaultRebuildThreshold = 100_000

// DefaultScanWorkers is the default parallelism of the delta brute-force
// scan. The delta is small by construction, so a handful of workers keeps
// the scan off the query's critical path without stealing cores from the
// tree search.
const DefaultScanWorkers = 8

// Default bounds of the rebuild retry backoff: a failed background
// rebuild is retried after DefaultRebuildRetryBase, doubling per
// consecutive failure up to DefaultRebuildRetryMax.
const (
	DefaultRebuildRetryBase = 100 * time.Millisecond
	DefaultRebuildRetryMax  = 10 * time.Second
)

// ErrClosed is returned by operations on a closed live index.
var ErrClosed = errors.New("live: index closed")

// ErrEmpty is returned by queries against a live index holding no series.
// It wraps core.ErrEmptyIndex so errors.Is treats the two uniformly.
var ErrEmpty = fmt.Errorf("live: index contains no series: %w", core.ErrEmptyIndex)

// Options configures a live index.
type Options struct {
	// Core configures every immutable generation (construction and
	// default query parameters); zero fields use the paper's defaults.
	Core core.Options
	// Engine configures the persistent query pool shared by all
	// generations.
	Engine engine.Options
	// RebuildThreshold is the active-delta size (series) that triggers a
	// background rebuild. Default DefaultRebuildThreshold.
	RebuildThreshold int
	// ScanWorkers is the delta-scan parallelism. Default DefaultScanWorkers.
	ScanWorkers int
	// BlockSeries is the delta storage block granularity. Default
	// delta.DefaultBlockSeries.
	BlockSeries int
	// Shards is the number of independent index shards per generation
	// (default 1). Appends route round-robin — global position p lives in
	// shard p%S — so a generational rebuild reconstructs S trees of
	// O(n/S) series concurrently instead of one O(n) tree, and queries
	// fan out across the shards with a shared pruning bound.
	Shards int
	// Metrics, when non-nil, receives the live index's telemetry — delta
	// occupancy, generation number, rebuild counts and durations — and is
	// handed to the query engine (unless Engine.Metrics is already set).
	// Nil disables all measurement.
	Metrics *metrics.Registry
	// WAL, when non-nil, journals every acked Append/AppendBatch to the
	// write-ahead log before it reaches the delta buffer, and replays
	// the log's uncovered tail into the delta at boot. The index USES
	// the log but does not own it: the caller opens it (positioned
	// after any snapshot it loads), truncates it when snapshots land,
	// and closes it after Close.
	WAL *wal.Log
	// RebuildRetryBase/RebuildRetryMax bound the exponential backoff
	// applied to failed background rebuilds. Defaults
	// DefaultRebuildRetryBase/DefaultRebuildRetryMax.
	RebuildRetryBase time.Duration
	RebuildRetryMax  time.Duration
}

func (o Options) withDefaults() Options {
	if o.RebuildThreshold <= 0 {
		o.RebuildThreshold = DefaultRebuildThreshold
	}
	if o.ScanWorkers <= 0 {
		o.ScanWorkers = DefaultScanWorkers
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.RebuildRetryBase <= 0 {
		o.RebuildRetryBase = DefaultRebuildRetryBase
	}
	if o.RebuildRetryMax <= 0 {
		o.RebuildRetryMax = DefaultRebuildRetryMax
	}
	if o.RebuildRetryMax < o.RebuildRetryBase {
		o.RebuildRetryMax = o.RebuildRetryBase
	}
	return o
}

// view is one immutable configuration of the index: the current
// generation, the frozen delta snapshot being merged by an in-flight (or
// failed) rebuild, and the active delta receiving appends. Queries load
// the whole view with one atomic read; the three position ranges are
// [0, baseLen), [baseLen, baseLen+frozen.Len()), and
// [activeStart, activeStart+active.Len()).
type view struct {
	base    *shard.Index    // nil before the first generation exists
	baseLen int             // series in base (0 when base == nil)
	frozen  *delta.Snapshot // nil unless a rebuild is pending/in flight
	active  *delta.Buffer
}

// frozenLen reports the frozen snapshot's size (0 when none).
func (v *view) frozenLen() int {
	if v.frozen == nil {
		return 0
	}
	return v.frozen.Len()
}

// activeStart is the global position of the active delta's first series.
func (v *view) activeStart() int { return v.baseLen + v.frozenLen() }

// Index is a mutable MESSI index: an immutable generation plus a delta
// buffer, with generational background rebuilds. All methods are safe for
// concurrent use.
type Index struct {
	opts      Options
	seriesLen int
	eng       *engine.Engine
	view      atomic.Pointer[view]
	gen       atomic.Int64 // immutable generations built so far

	// Rebuild telemetry (nil instruments when Options.Metrics is nil).
	rebuilds        *metrics.Counter
	rebuildFailures *metrics.Counter
	rebuildRetries  *metrics.Counter
	rebuildDur      *metrics.Histogram

	mu         sync.Mutex // serializes appends and view transitions
	cond       *sync.Cond // broadcast when a rebuild finishes
	rebuilding bool
	closed     bool
	rebuildErr error // last rebuild failure (sticky until a rebuild succeeds)

	// Bounded-backoff retry of failed rebuilds (guarded by mu).
	retryAttempt int         // consecutive failures so far
	retryTimer   *time.Timer // pending scheduled retry, nil when none

	walRow [1][]float32 // scratch for journaling single appends (under mu)
}

// New creates a live index for series of the given length. initial may be
// nil or empty (the index starts with no generation and answers purely
// from the delta); when non-empty it is indexed synchronously as
// generation 1 and retained, like core.Build, without copying.
func New(seriesLen int, initial *series.Collection, opts Options) (*Index, error) {
	if initial != nil && initial.Count() > 0 && initial.Length != seriesLen {
		return nil, fmt.Errorf("live: initial collection series length %d, want %d", initial.Length, seriesLen)
	}
	ix, err := prepare(seriesLen, opts)
	if err != nil {
		return nil, err
	}
	var base *shard.Index
	if initial != nil && initial.Count() > 0 {
		if base, err = shard.Build(initial, ix.opts.Shards, ix.opts.Core); err != nil {
			return nil, err
		}
	}
	return ix.boot(base)
}

// NewFromIndex boots a live index from an already-built (typically
// snapshot-restored) generation, skipping the construction pipeline
// entirely: base becomes generation 1 and future rebuilds merge appends
// into it. Structural options (segments, cardinality, leaf capacity) are
// taken from base so later generations keep its shape; runtime options
// (workers, queues, thresholds) come from opts. A sharded base fixes the
// live index's shard count: positions are routed by the base's
// round-robin partition, so opts.Shards is overridden.
func NewFromIndex(base *shard.Index, opts Options) (*Index, error) {
	if base == nil || base.Len() == 0 {
		return nil, fmt.Errorf("live: cannot boot from an empty index")
	}
	baseOpts := base.Opts()
	opts.Core.Segments = baseOpts.Segments
	opts.Core.CardBits = baseOpts.CardBits
	opts.Core.LeafCapacity = baseOpts.LeafCapacity
	opts.Shards = base.NumShards()
	ix, err := prepare(base.SeriesLen(), opts)
	if err != nil {
		return nil, err
	}
	return ix.boot(base)
}

// boot publishes the initial view, replays the WAL tail (when one is
// configured) into the delta, and hands the index back ready to serve.
// A replay failure shuts the engine down and surfaces the error — a
// live index must not come up silently missing acked appends.
func (ix *Index) boot(base *shard.Index) (*Index, error) {
	ix.start(base)
	if err := ix.replayWAL(); err != nil {
		ix.eng.Close()
		return nil, err
	}
	return ix, nil
}

// prepare validates options and builds the not-yet-started index shell.
func prepare(seriesLen int, opts Options) (*Index, error) {
	opts.Core = core.FillDefaults(opts.Core)
	opts = opts.withDefaults()
	// The engine inherits its pool shape from the core options even when
	// the index starts empty (engine.New would otherwise only see them
	// once a generation exists).
	if opts.Engine.PoolWorkers <= 0 {
		opts.Engine.PoolWorkers = opts.Core.SearchWorkers
	}
	if opts.Engine.Queues <= 0 {
		opts.Engine.Queues = opts.Core.QueueCount
	}
	if opts.Engine.Metrics == nil {
		opts.Engine.Metrics = opts.Metrics
	}
	// Validate the schema and shard count once up front so generation
	// rebuilds cannot fail on configuration (a bad length/segments
	// combination surfaces here, not in a background goroutine).
	if _, err := isax.NewSchema(seriesLen, opts.Core.Segments, opts.Core.CardBits); err != nil {
		return nil, err
	}
	if opts.Shards > shard.MaxShards {
		return nil, fmt.Errorf("live: shard count %d out of range [1,%d]", opts.Shards, shard.MaxShards)
	}
	ix := &Index{opts: opts, seriesLen: seriesLen}
	ix.cond = sync.NewCond(&ix.mu)
	return ix, nil
}

// start publishes the initial view around base (which may be nil) and
// spins up the query engine.
func (ix *Index) start(base *shard.Index) *Index {
	baseLen := 0
	if base != nil {
		baseLen = base.Len()
		ix.gen.Store(1)
	}
	ix.view.Store(&view{
		base:    base,
		baseLen: baseLen,
		active:  delta.New(ix.seriesLen, ix.opts.BlockSeries),
	})
	ix.eng = engine.NewSharded(base, ix.opts.Engine)
	if r := ix.opts.Metrics; r != nil {
		ix.rebuilds = r.Counter("messi_live_rebuilds_total",
			"Completed background generation rebuilds.")
		ix.rebuildFailures = r.Counter("messi_live_rebuild_failures_total",
			"Background generation rebuilds that failed (the frozen delta stays searchable and is retried).")
		ix.rebuildRetries = r.Counter("messi_rebuild_retries_total",
			"Background rebuilds relaunched by the bounded-backoff retry after a failure.")
		ix.rebuildDur = r.Histogram("messi_live_rebuild_seconds",
			"Wall time of background generation rebuilds (merge plus swap).")
		r.GaugeFunc("messi_live_delta_series",
			"Series buffered in the delta (frozen plus active), answered by exact scan.", func() float64 {
				v := ix.view.Load()
				return float64(v.frozenLen() + v.active.Len())
			})
		r.GaugeFunc("messi_live_base_series",
			"Series in the current immutable generation.", func() float64 {
				return float64(ix.view.Load().baseLen)
			})
		r.GaugeFunc("messi_live_generation",
			"Immutable generations built so far.", func() float64 {
				return float64(ix.gen.Load())
			})
	}
	return ix
}

// replayWAL replays the configured WAL's uncovered tail into the
// active delta. Positions below the base (already covered by the
// loaded snapshot) are skipped; the remainder must form a contiguous
// run starting exactly at the base length, or recovery refuses — a gap
// means the snapshot predates the log's truncation point and acked
// series would be silently lost.
func (ix *Index) replayWAL() error {
	w := ix.opts.WAL
	if w == nil {
		return nil
	}
	v := ix.view.Load()
	base := int64(v.baseLen)
	if s := w.Start(); s > base {
		return fmt.Errorf("live: wal starts at position %d but the loaded snapshot covers only %d series (snapshot older than the wal's truncation point)", s, base)
	}
	if end := w.End(); end >= 0 && end < base {
		// The snapshot covers the whole log (it was saved after the
		// last logged append): drop the stale records and realign the
		// log to continue at the snapshot boundary.
		return w.Truncate(base)
	}
	expect := base
	err := w.Replay(base, func(pos int64, s []float32) error {
		if pos != expect {
			return fmt.Errorf("live: wal replay gap: got position %d, want %d", pos, expect)
		}
		if _, err := v.active.Append(s); err != nil {
			return err
		}
		expect++
		return nil
	})
	if err != nil {
		return err
	}
	// The replayed tail may already exceed the rebuild threshold.
	ix.mu.Lock()
	ix.maybeRebuildLocked()
	ix.mu.Unlock()
	return nil
}

// SeriesLen reports the length (points) of each indexed series.
func (ix *Index) SeriesLen() int { return ix.seriesLen }

// Len reports the number of series currently searchable.
func (ix *Index) Len() int {
	v := ix.view.Load()
	return v.activeStart() + v.active.Len()
}

// Generation reports how many immutable generations have been built.
func (ix *Index) Generation() int64 { return ix.gen.Load() }

// Engine returns the persistent query engine serving the current
// generation (for callers that want direct, delta-blind tree queries).
func (ix *Index) Engine() *engine.Engine { return ix.eng }

// Base returns the current immutable generation — a shard group of one
// or more indexes — nil before the first rebuild of an initially-empty
// index. After a Flush with no concurrent appends it covers every series
// — the state a snapshot should capture.
func (ix *Index) Base() *shard.Index { return ix.view.Load().base }

// Shards reports the configured shard count per generation.
func (ix *Index) Shards() int { return ix.opts.Shards }

// Append adds one series (copied) and returns its stable position. The
// series is searchable as soon as Append returns.
func (ix *Index) Append(s []float32) (int, error) {
	if len(s) != ix.seriesLen {
		return 0, fmt.Errorf("live: series length %d, index series length %d", len(s), ix.seriesLen)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, ErrClosed
	}
	v := ix.view.Load()
	if w := ix.opts.WAL; w != nil {
		// Journal before the in-memory append: an ack implies the
		// series is recoverable. The WAL refusing (disk failure,
		// injected fault) fails the append with the delta untouched.
		ix.walRow[0] = s
		err := w.Append(int64(v.activeStart()+v.active.Len()), ix.walRow[:])
		ix.walRow[0] = nil
		if err != nil {
			return 0, fmt.Errorf("live: wal append: %w", err)
		}
	}
	idx, err := v.active.Append(s)
	if err != nil {
		return 0, err
	}
	ix.maybeRebuildLocked()
	return v.activeStart() + idx, nil
}

// AppendBatch adds a batch of series atomically (contiguous positions)
// and returns the position of the first.
func (ix *Index) AppendBatch(rows [][]float32) (int, error) {
	for i, r := range rows {
		if len(r) != ix.seriesLen {
			return 0, fmt.Errorf("live: batch series %d has length %d, index series length %d", i, len(r), ix.seriesLen)
		}
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.closed {
		return 0, ErrClosed
	}
	v := ix.view.Load()
	if w := ix.opts.WAL; w != nil && len(rows) > 0 {
		// One record per batch, so replay preserves batch atomicity.
		if err := w.Append(int64(v.activeStart()+v.active.Len()), rows); err != nil {
			return 0, fmt.Errorf("live: wal append: %w", err)
		}
	}
	idx, err := v.active.AppendBatch(rows)
	if err != nil {
		return 0, err
	}
	ix.maybeRebuildLocked()
	return v.activeStart() + idx, nil
}

// maybeRebuildLocked launches a background rebuild when the active delta
// has crossed the threshold (or a failed rebuild left a frozen snapshot
// behind) and none is in flight. Caller holds mu.
func (ix *Index) maybeRebuildLocked() {
	if ix.rebuilding || ix.closed {
		return
	}
	if ix.rebuildErr != nil {
		// The last rebuild failed; relaunching on every append (or from
		// rebuild's own tail) would retry a failing O(n) merge in a hot
		// loop. The backoff timer armed by scheduleRetryLocked is the
		// only relaunch path until a retry succeeds.
		return
	}
	v := ix.view.Load()
	if v.frozen == nil && v.active.Len() < ix.opts.RebuildThreshold {
		return
	}
	ix.startRebuildLocked()
}

// startRebuildLocked freezes the active delta (unless a frozen snapshot
// is already pending from a failed attempt) and launches the background
// merge. Caller holds mu with !rebuilding && !closed. It is a no-op when
// there is nothing to merge.
func (ix *Index) startRebuildLocked() {
	v := ix.view.Load()
	if v.frozen == nil {
		frozen := v.active.Snapshot()
		if frozen.Len() == 0 {
			return
		}
		v = &view{
			base:    v.base,
			baseLen: v.baseLen,
			frozen:  frozen,
			active:  delta.New(ix.seriesLen, ix.opts.BlockSeries),
		}
		ix.view.Store(v)
	}
	ix.rebuilding = true
	go ix.rebuild(v)
}

// rebuild merges the view's generation and frozen delta into a new
// immutable generation and swaps it in. It runs in its own goroutine;
// queries and appends proceed concurrently against the frozen view.
// With S shards the merge is per shard — each shard's O(n/S) slice plus
// its round-robin share of the frozen delta — and the S builds run
// concurrently.
func (ix *Index) rebuild(v *view) {
	start := time.Now()
	total := v.baseLen + v.frozen.Len()
	newIx, err := ix.mergeRecovered(v, total)
	ix.rebuildDur.Observe(time.Since(start))
	if err != nil {
		ix.rebuildFailures.Inc()
	} else {
		ix.rebuilds.Inc()
	}

	ix.mu.Lock()
	if err != nil {
		// Keep the frozen snapshot in the view: it stays searchable,
		// and the merge is retried by the backoff timer scheduled here
		// (and only by it — see maybeRebuildLocked).
		ix.rebuildErr = err
		ix.scheduleRetryLocked()
	} else {
		cur := ix.view.Load() // only rebuilds store the view after freeze, and only one runs
		// Swap the engine BEFORE publishing the new view. A query that
		// loads the old view against the new generation is safe — the
		// frozen series it scans exist in both, at the same positions, and
		// the bounds dedupe by position — but the reverse order would open
		// a window where a query sees a frozen-free view while the engine
		// still serves the old generation, losing the merged series.
		ix.eng.SwapSharded(newIx)
		ix.view.Store(&view{base: newIx, baseLen: total, active: cur.active})
		ix.gen.Add(1)
		ix.rebuildErr = nil
		ix.retryAttempt = 0
		if ix.retryTimer != nil {
			ix.retryTimer.Stop()
			ix.retryTimer = nil
		}
	}
	ix.rebuilding = false
	ix.cond.Broadcast()
	// Appends during the rebuild may already have crossed the threshold.
	ix.maybeRebuildLocked()
	ix.mu.Unlock()
}

// mergeRecovered is mergeGeneration with a panic containment wall: a
// panicking rebuild (a bug, or an injected fault) must degrade into an
// ordinary rebuild failure — frozen delta still searchable, retry
// scheduled — never kill the process.
func (ix *Index) mergeRecovered(v *view, total int) (newIx *shard.Index, err error) {
	defer func() {
		if r := recover(); r != nil {
			newIx, err = nil, fmt.Errorf("live: rebuild panicked: %v", r)
		}
	}()
	if err := fpRebuild.Hit(); err != nil {
		return nil, err
	}
	return ix.mergeGeneration(v, total)
}

// scheduleRetryLocked arms the backoff timer after a rebuild failure:
// RebuildRetryBase doubling per consecutive failure, capped at
// RebuildRetryMax. Caller holds mu.
func (ix *Index) scheduleRetryLocked() {
	if ix.closed {
		return
	}
	shift := ix.retryAttempt
	if shift > 16 { // avoid Duration overflow; 2^16×base is past any sane cap
		shift = 16
	}
	delay := ix.opts.RebuildRetryBase << shift
	if delay <= 0 || delay > ix.opts.RebuildRetryMax {
		delay = ix.opts.RebuildRetryMax
	}
	ix.retryAttempt++
	if ix.retryTimer != nil {
		ix.retryTimer.Stop()
	}
	ix.retryTimer = time.AfterFunc(delay, ix.retryRebuild)
}

// retryRebuild is the backoff timer's callback: relaunch the merge if
// it is still needed and nothing else already has.
func (ix *Index) retryRebuild() {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.retryTimer = nil
	if ix.closed || ix.rebuilding {
		return
	}
	v := ix.view.Load()
	if v.frozen == nil && v.active.Len() < ix.opts.RebuildThreshold {
		return
	}
	ix.rebuildRetries.Inc()
	ix.startRebuildLocked()
}

// mergeGeneration builds the next generation: every shard's new slice is
// its current data followed by its round-robin share of the frozen delta
// (global position p routes to shard p%S, so locals stay ascending), and
// the per-shard builds run concurrently with the construction workers
// divided among them.
func (ix *Index) mergeGeneration(v *view, total int) (*shard.Index, error) {
	S := ix.opts.Shards
	L := ix.seriesLen

	flats := shard.AllocSlices(total, S, L)
	fill := make([]int, S)
	for s := 0; s < S; s++ {
		if v.base == nil {
			break
		}
		if old := v.base.Shard(s); old != nil {
			copy(flats[s], old.Data.Data)
			fill[s] = len(old.Data.Data)
		}
	}
	for j := 0; j < v.frozen.Len(); j++ {
		s := (v.baseLen + j) % S
		copy(flats[s][fill[s]:fill[s]+L], v.frozen.At(j))
		fill[s] += L
	}
	return shard.BuildFlats(flats, total, L, ix.opts.Core)
}

// Flush synchronously merges all buffered series into the immutable
// generation: it waits for any in-flight rebuild, then keeps rebuilding
// until the delta is empty (or a rebuild fails). After a Flush with no
// concurrent appends, Stats().DeltaSeries is 0.
func (ix *Index) Flush() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for {
		if ix.closed {
			return ErrClosed
		}
		if ix.rebuilding {
			ix.cond.Wait()
			continue
		}
		if ix.rebuildErr != nil {
			return ix.rebuildErr
		}
		v := ix.view.Load()
		if v.frozen == nil && v.active.Len() == 0 {
			return nil
		}
		ix.startRebuildLocked()
	}
}

// Close stops background rebuilds (waiting for an in-flight one) and
// shuts down the query pool. Appends and Flushes after Close return
// ErrClosed; queries that reach the engine return engine.ErrClosed.
func (ix *Index) Close() {
	ix.mu.Lock()
	if ix.closed {
		ix.mu.Unlock()
		return
	}
	ix.closed = true
	if ix.retryTimer != nil {
		ix.retryTimer.Stop()
		ix.retryTimer = nil
	}
	for ix.rebuilding {
		ix.cond.Wait()
	}
	ix.mu.Unlock()
	ix.eng.Close()
}

// Stats describes the live index's current shape.
type Stats struct {
	Series      int          // total searchable series (base + delta)
	BaseSeries  int          // series in the current immutable generation
	DeltaSeries int          // series in the delta (frozen + active)
	Generation  int64        // immutable generations built so far
	Rebuilding  bool         // a background rebuild is in flight
	Shards      int          // index shards per generation (1 = unsharded)
	Tree        tree.Stats   // current generation's tree shape, aggregated over shards
	PerShard    []tree.Stats // per-shard tree shapes (nil when unsharded)
}

// Stats returns a point-in-time snapshot of the index shape.
func (ix *Index) Stats() Stats {
	v := ix.view.Load()
	ix.mu.Lock()
	rebuilding := ix.rebuilding
	ix.mu.Unlock()
	st := Stats{
		BaseSeries:  v.baseLen,
		DeltaSeries: v.frozenLen() + v.active.Len(),
		Generation:  ix.gen.Load(),
		Rebuilding:  rebuilding,
		Shards:      ix.opts.Shards,
	}
	st.Series = st.BaseSeries + st.DeltaSeries
	if v.base != nil {
		st.Tree = v.base.Stats()
		if ix.opts.Shards > 1 {
			st.PerShard = v.base.ShardStats()
		}
	}
	return st
}

// Series returns (a view of) the series at the given stable position.
// The caller must not modify it.
func (ix *Index) Series(pos int) ([]float32, error) {
	v := ix.view.Load()
	switch {
	case pos < 0:
		return nil, fmt.Errorf("live: negative position %d", pos)
	case pos < v.baseLen:
		return v.base.At(pos), nil
	case pos < v.activeStart():
		return v.frozen.At(pos - v.baseLen), nil
	default:
		snap := v.active.Snapshot()
		idx := pos - v.activeStart()
		if idx >= snap.Len() {
			return nil, fmt.Errorf("live: position %d out of range [0,%d)", pos, v.activeStart()+snap.Len())
		}
		return snap.At(idx), nil
	}
}

// validateQuery checks the query length against the index shape.
func (ix *Index) validateQuery(query []float32) error {
	if len(query) != ix.seriesLen {
		return fmt.Errorf("%w: query length %d, index series length %d", core.ErrWrongLength, len(query), ix.seriesLen)
	}
	return nil
}

// Search answers an exact 1-NN query under Euclidean distance over the
// union of the immutable generation and the delta.
func (ix *Index) Search(query []float32) (core.Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return core.Match{}, err
	}
	v := ix.view.Load()
	seeds, err := ix.delta1NN(v, query, nil)
	if err != nil {
		return core.Match{}, err
	}
	if v.base == nil {
		if len(seeds) == 0 {
			return core.Match{}, ErrEmpty
		}
		return seeds[0], nil
	}
	return ix.eng.SearchSeeded(query, seeds)
}

// SearchKNN answers an exact k-NN query over the union of generation and
// delta, returning up to k matches in ascending distance order.
func (ix *Index) SearchKNN(query []float32, k int) ([]core.Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w, got %d", core.ErrBadK, k)
	}
	v := ix.view.Load()
	seeds, err := ix.deltaKNN(v, query, k, nil)
	if err != nil {
		return nil, err
	}
	if v.base == nil {
		if len(seeds) == 0 {
			return nil, ErrEmpty
		}
		return seeds, nil
	}
	return ix.eng.SearchKNNSeeded(query, k, seeds)
}

// SearchDTW answers an exact 1-NN query under constrained DTW with a
// Sakoe-Chiba band of the given radius (points) over the union of
// generation and delta.
func (ix *Index) SearchDTW(query []float32, window int) (core.Match, error) {
	if err := ix.validateQuery(query); err != nil {
		return core.Match{}, err
	}
	v := ix.view.Load()
	seeds, err := ix.deltaDTW(v, query, window, nil)
	if err != nil {
		return core.Match{}, err
	}
	if v.base == nil {
		if len(seeds) == 0 {
			return core.Match{}, ErrEmpty
		}
		return seeds[0], nil
	}
	// Through the engine for its admission gate (DTW spawns per-query
	// workers; unbounded concurrent spawns would starve the pool). The
	// engine generation may be one rebuild ahead of v — safe, the frozen
	// series exist in both at the same positions.
	return ix.eng.SearchDTW(query, window, seeds)
}

// forEachDeltaChunk runs fn over every contiguous chunk of the view's
// delta (frozen snapshot first, then a fresh snapshot of the active
// buffer), passing each chunk's global start position.
func (ix *Index) forEachDeltaChunk(v *view, fn func(col *series.Collection, start int) error) error {
	emit := func(snap *delta.Snapshot, start int) error {
		cols, err := snap.Collections()
		if err != nil {
			return err
		}
		off := start
		for _, col := range cols {
			if err := fn(col, off); err != nil {
				return err
			}
			off += col.Count()
		}
		return nil
	}
	if v.frozen != nil {
		if err := emit(v.frozen, v.baseLen); err != nil {
			return err
		}
	}
	active := v.active.Snapshot()
	if active.Len() > 0 {
		if err := emit(active, v.activeStart()); err != nil {
			return err
		}
	}
	return nil
}

// deltaBest folds a per-chunk 1-NN scan over the delta, returning zero
// or one seed match with a global position. Each chunk scan is seeded
// with the best distance found so far, so later chunks reuse the earlier
// chunks' pruning work — the same bound-threading the tree search gets
// from SearchOptions.Seeds.
func (ix *Index) deltaBest(v *view, scanChunk func(col *series.Collection, bound float64) (core.Match, error)) ([]core.Match, error) {
	best := core.Match{Position: -1, Dist: math.Inf(1)}
	err := ix.forEachDeltaChunk(v, func(col *series.Collection, start int) error {
		m, err := scanChunk(col, best.Dist)
		if err != nil {
			return err
		}
		if m.Position >= 0 && m.Dist < best.Dist {
			best = core.Match{Position: start + m.Position, Dist: m.Dist}
		}
		return nil
	})
	if err != nil || best.Position < 0 {
		return nil, err
	}
	return []core.Match{best}, nil
}

// delta1NN brute-force scans the delta for the query's nearest neighbor.
// ctrs, when non-nil, accumulates the scan's distance-computation counts
// (so per-query traces cover the delta side too).
func (ix *Index) delta1NN(v *view, query []float32, ctrs *stats.Counters) ([]core.Match, error) {
	return ix.deltaBest(v, func(col *series.Collection, bound float64) (core.Match, error) {
		return scan.Search1NNBounded(col, query, ix.opts.ScanWorkers, bound, ctrs)
	})
}

// deltaKNN brute-force scans the delta for the query's k nearest
// neighbors (global positions, ascending distance).
func (ix *Index) deltaKNN(v *view, query []float32, k int, ctrs *stats.Counters) ([]core.Match, error) {
	var all []core.Match
	err := ix.forEachDeltaChunk(v, func(col *series.Collection, start int) error {
		ms, err := scan.SearchKNN(col, query, k, ix.opts.ScanWorkers, ctrs)
		if err != nil {
			return err
		}
		for _, m := range ms {
			all = append(all, core.Match{Position: start + m.Position, Dist: m.Dist})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			return all[i].Dist < all[j].Dist
		}
		return all[i].Position < all[j].Position
	})
	if len(all) > k {
		all = all[:k]
	}
	return all, nil
}

// deltaDTW brute-force scans the delta under constrained DTW.
func (ix *Index) deltaDTW(v *view, query []float32, window int, ctrs *stats.Counters) ([]core.Match, error) {
	return ix.deltaBest(v, func(col *series.Collection, bound float64) (core.Match, error) {
		return scan.SearchDTWBounded(col, query, window, ix.opts.ScanWorkers, bound, ctrs)
	})
}
