package live

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dtw"
	"repro/internal/series"
)

// walk generates n random-walk series of the given length.
func walk(n, length int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float32, n)
	for i := range rows {
		s := make([]float32, length)
		v := float32(0)
		for j := range s {
			v += float32(rng.NormFloat64())
			s[j] = v
		}
		rows[i] = s
	}
	return rows
}

func collection(t *testing.T, rows [][]float32) *series.Collection {
	t.Helper()
	col, err := series.FromSlices(rows)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

// smallOpts keeps trees and pools small enough for fast unit tests.
func smallOpts(threshold int) Options {
	return Options{
		Core:             core.Options{LeafCapacity: 32, SearchWorkers: 4, IndexWorkers: 4, ChunkSize: 128},
		RebuildThreshold: threshold,
		ScanWorkers:      2,
		BlockSeries:      64,
	}
}

// freshIndex builds an immutable core index over rows (the oracle the
// live index must agree with).
func freshIndex(t *testing.T, rows [][]float32) *core.Index {
	t.Helper()
	ix, err := core.Build(collection(t, rows), core.Options{LeafCapacity: 32, SearchWorkers: 4, IndexWorkers: 4, ChunkSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestEquivalenceAcrossLifecycle: live answers must equal a from-scratch
// build over the union of the data at every stage — delta-only, mixed
// base+delta, and post-flush.
func TestEquivalenceAcrossLifecycle(t *testing.T) {
	const length = 64
	all := walk(600, length, 1)
	queries := walk(20, length, 99)
	window := dtw.WindowSize(length, 0.1)

	// Stage machinery: check live against a fresh build over rows.
	check := func(t *testing.T, ix *Index, rows [][]float32) {
		t.Helper()
		oracle := freshIndex(t, rows)
		if ix.Len() != len(rows) {
			t.Fatalf("live Len = %d, want %d", ix.Len(), len(rows))
		}
		for qi, q := range queries {
			got, err := ix.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Dist != want.Dist {
				t.Fatalf("query %d: live 1-NN dist %v (pos %d), fresh %v (pos %d)",
					qi, got.Dist, got.Position, want.Dist, want.Position)
			}
			gotK, err := ix.SearchKNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantK, err := oracle.SearchKNN(q, 5, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(gotK) != len(wantK) {
				t.Fatalf("query %d: live k-NN returned %d, fresh %d", qi, len(gotK), len(wantK))
			}
			for i := range gotK {
				if gotK[i].Dist != wantK[i].Dist {
					t.Fatalf("query %d k-NN rank %d: live dist %v, fresh %v", qi, i, gotK[i].Dist, wantK[i].Dist)
				}
			}
			gotD, err := ix.SearchDTW(q, window)
			if err != nil {
				t.Fatal(err)
			}
			wantD, err := oracle.SearchDTW(q, window, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if gotD.Dist != wantD.Dist {
				t.Fatalf("query %d: live DTW dist %v, fresh %v", qi, gotD.Dist, wantD.Dist)
			}
		}
	}

	// Large threshold: no automatic rebuild, so each stage tests a known
	// base/delta split.
	ix, err := New(length, collection(t, all[:200]), smallOpts(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	t.Run("base-only", func(t *testing.T) { check(t, ix, all[:200]) })

	if _, err := ix.AppendBatch(all[200:500]); err != nil {
		t.Fatal(err)
	}
	for _, s := range all[500:] {
		if _, err := ix.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	t.Run("base-plus-delta", func(t *testing.T) { check(t, ix, all) })

	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.DeltaSeries != 0 || st.BaseSeries != len(all) {
		t.Fatalf("after flush: %+v", st)
	}
	if st.Generation != 2 {
		t.Fatalf("after flush generation = %d, want 2", st.Generation)
	}
	t.Run("post-flush", func(t *testing.T) { check(t, ix, all) })
}

// TestAppendPositionsStable: positions are append-order and survive
// rebuilds.
func TestAppendPositionsStable(t *testing.T) {
	const length = 32
	rows := walk(300, length, 2)
	ix, err := New(length, collection(t, rows[:100]), smallOpts(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for i, s := range rows[100:] {
		pos, err := ix.Append(s)
		if err != nil {
			t.Fatal(err)
		}
		if pos != 100+i {
			t.Fatalf("append %d got position %d", 100+i, pos)
		}
	}
	verify := func() {
		for i, s := range rows {
			got, err := ix.Series(i)
			if err != nil {
				t.Fatal(err)
			}
			for j := range s {
				if got[j] != s[j] {
					t.Fatalf("series %d point %d: got %v, want %v", i, j, got[j], s[j])
				}
			}
		}
	}
	verify()
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	verify()
}

// TestEmptyStart: an index created with no initial data answers from the
// delta alone and builds its first generation on flush.
func TestEmptyStart(t *testing.T) {
	const length = 32
	ix, err := New(length, nil, smallOpts(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	if _, err := ix.Search(make([]float32, length)); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty search error = %v, want ErrEmpty", err)
	}
	rows := walk(50, length, 3)
	if _, err := ix.AppendBatch(rows); err != nil {
		t.Fatal(err)
	}
	q := rows[17]
	m, err := ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 17 || m.Dist != 0 {
		t.Fatalf("self-query answered %+v, want position 17 dist 0", m)
	}
	if ix.Generation() != 0 {
		t.Fatalf("generation = %d before first rebuild", ix.Generation())
	}
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if ix.Generation() != 1 {
		t.Fatalf("generation = %d after flush, want 1", ix.Generation())
	}
	m, err = ix.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.Position != 17 || m.Dist != 0 {
		t.Fatalf("post-flush self-query answered %+v", m)
	}
}

// TestAutomaticRebuild: crossing the threshold triggers a background
// generation swap without any explicit Flush.
func TestAutomaticRebuild(t *testing.T) {
	const length = 32
	ix, err := New(length, collection(t, walk(100, length, 4)), smallOpts(50))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	rows := walk(500, length, 5)
	for _, s := range rows {
		if _, err := ix.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	// Quiesce: wait for in-flight rebuilds, then assert at least one
	// background swap happened before the final explicit flush.
	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	if g := ix.Generation(); g < 2 {
		t.Fatalf("generation = %d after 500 appends over threshold 50, want >= 2", g)
	}
	if st := ix.Stats(); st.Series != 600 || st.DeltaSeries != 0 {
		t.Fatalf("final stats %+v", st)
	}
}

// TestConcurrentAppendSearchDuringRebuild is the -race stress: appenders,
// searchers, and background rebuilds all run concurrently, and every
// answer must be exact with respect to some consistent prefix of the
// appended data (distances never worse than the eventual exact answer on
// data the query could see; here we check self-queries find themselves).
func TestConcurrentAppendSearchDuringRebuild(t *testing.T) {
	const length = 32
	initial := walk(200, length, 6)
	ix, err := New(length, collection(t, initial), smallOpts(40)) // tiny threshold: many rebuilds
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	extra := walk(400, length, 7)
	var wg sync.WaitGroup
	// Two appenders splitting the extra rows.
	for a := 0; a < 2; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := a; i < len(extra); i += 2 {
				if _, err := ix.Append(extra[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	// Searchers: self-queries over the initial data must always find an
	// exact match (dist 0) no matter which generation answers.
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				q := initial[(s*61+i*7)%len(initial)]
				m, err := ix.Search(q)
				if err != nil {
					t.Error(err)
					return
				}
				if m.Dist != 0 {
					t.Errorf("self-query dist %v, want 0", m.Dist)
					return
				}
				if _, err := ix.SearchKNN(q, 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	// A stats poller, to race the view transitions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = ix.Stats()
			_ = ix.Len()
		}
	}()
	wg.Wait()

	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every appended series must now be in the generation and findable.
	for i := 0; i < len(extra); i += 37 {
		m, err := ix.Search(extra[i])
		if err != nil {
			t.Fatal(err)
		}
		if m.Dist != 0 {
			t.Fatalf("appended series %d not found exactly (dist %v)", i, m.Dist)
		}
	}
	if st := ix.Stats(); st.Series != 600 || st.DeltaSeries != 0 {
		t.Fatalf("final stats %+v", st)
	}
}

// TestClose: operations after Close fail cleanly and Close is idempotent.
func TestClose(t *testing.T) {
	const length = 32
	ix, err := New(length, collection(t, walk(50, length, 8)), smallOpts(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	ix.Close()
	ix.Close()
	if _, err := ix.Append(make([]float32, length)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := ix.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("flush after close: %v, want ErrClosed", err)
	}
}

// TestValidation: malformed inputs are rejected.
func TestValidation(t *testing.T) {
	const length = 32
	ix, err := New(length, collection(t, walk(50, length, 9)), smallOpts(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Append(make([]float32, 5)); err == nil {
		t.Error("short append accepted")
	}
	if _, err := ix.Search(make([]float32, 5)); err == nil {
		t.Error("short query accepted")
	}
	if _, err := ix.SearchKNN(make([]float32, length), 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ix.Series(-1); err == nil {
		t.Error("negative position accepted")
	}
	if _, err := ix.Series(10_000); err == nil {
		t.Error("out-of-range position accepted")
	}
	if _, err := New(16, collection(t, walk(5, 32, 10)), Options{}); err == nil {
		t.Error("mismatched initial collection accepted")
	}
	if _, err := New(33, nil, Options{}); err == nil {
		t.Error("series length not a multiple of segments accepted")
	}
}

// TestKNNSpansBaseAndDelta: a k-NN answer must interleave base and delta
// series when both hold near neighbors, with k larger than the base.
func TestKNNSpansBaseAndDelta(t *testing.T) {
	const length = 32
	base := walk(3, length, 11)
	ix, err := New(length, collection(t, base), smallOpts(1_000_000))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	extra := walk(10, length, 12)
	if _, err := ix.AppendBatch(extra); err != nil {
		t.Fatal(err)
	}
	q := base[0]
	ms, err := ix.SearchKNN(q, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 13 {
		t.Fatalf("k-NN over 3+10 series returned %d matches, want 13", len(ms))
	}
	seen := map[int]bool{}
	for _, m := range ms {
		if seen[m.Position] {
			t.Fatalf("duplicate position %d in k-NN answer", m.Position)
		}
		seen[m.Position] = true
	}
}

// TestShardedLifecycle: a sharded live index (S=4) answers identically to
// a fresh unsharded build at every stage, keeps positions stable across
// the per-shard generational rebuilds, and reports per-shard stats.
func TestShardedLifecycle(t *testing.T) {
	const length = 64
	all := walk(600, length, 3)
	queries := walk(10, length, 303)
	window := dtw.WindowSize(length, 0.1)

	opts := smallOpts(1_000_000)
	opts.Shards = 4
	ix, err := New(length, collection(t, all[:200]), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", ix.Shards())
	}

	check := func(t *testing.T, rows [][]float32) {
		t.Helper()
		oracle := freshIndex(t, rows)
		for qi, q := range queries {
			got, err := ix.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.Search(q, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("query %d: sharded live %+v, fresh %+v", qi, got, want)
			}
			gotK, err := ix.SearchKNN(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			wantK, err := oracle.SearchKNN(q, 5, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(gotK) != len(wantK) {
				t.Fatalf("query %d: k-NN %d matches, fresh %d", qi, len(gotK), len(wantK))
			}
			for i := range gotK {
				if gotK[i] != wantK[i] {
					t.Fatalf("query %d rank %d: sharded live %+v, fresh %+v", qi, i, gotK[i], wantK[i])
				}
			}
			gotD, err := ix.SearchDTW(q, window)
			if err != nil {
				t.Fatal(err)
			}
			wantD, err := oracle.SearchDTW(q, window, core.SearchOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if gotD != wantD {
				t.Fatalf("query %d: sharded live DTW %+v, fresh %+v", qi, gotD, wantD)
			}
		}
	}

	t.Run("base-only", func(t *testing.T) { check(t, all[:200]) })

	if _, err := ix.AppendBatch(all[200:]); err != nil {
		t.Fatal(err)
	}
	t.Run("base-plus-delta", func(t *testing.T) { check(t, all) })

	if err := ix.Flush(); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.DeltaSeries != 0 || st.BaseSeries != len(all) || st.Shards != 4 {
		t.Fatalf("after flush: %+v", st)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d entries, want 4", len(st.PerShard))
	}
	perShardTotal := 0
	for _, ps := range st.PerShard {
		perShardTotal += ps.Series
	}
	if perShardTotal != len(all) || st.Tree.Series != len(all) {
		t.Fatalf("per-shard series sum %d, aggregate %d, want %d", perShardTotal, st.Tree.Series, len(all))
	}
	t.Run("post-flush", func(t *testing.T) { check(t, all) })

	// Positions remain append-order across the sharded rebuild.
	for _, p := range []int{0, 199, 200, 399, 599} {
		got, err := ix.Series(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if got[i] != all[p][i] {
				t.Fatalf("position %d changed across sharded rebuild (point %d)", p, i)
			}
		}
	}
}
