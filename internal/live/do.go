package live

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dtw"
)

// Do serves one quality-of-service request over the union of the immutable
// generation and the delta. The delta is always scanned exactly — it is
// small by construction, so even approximate and deadline requests afford
// it — and its best matches seed the engine request, so the tree search
// honors the same contract (one shared bound, one QoS state) as the static
// backends. With no generation yet, the exhaustive delta scan IS the whole
// search, so the answer is exact whatever the requested mode.
func (ix *Index) Do(req core.Request) (core.Result, error) {
	if err := req.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := ix.validateQuery(req.Query); err != nil {
		return core.Result{}, err
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	if req.DTW {
		if k > 1 {
			return core.Result{}, fmt.Errorf("live: k-NN under DTW is not supported (k=%d)", k)
		}
		if err := dtw.CheckWindow(ix.seriesLen, req.Window); err != nil {
			return core.Result{}, fmt.Errorf("%w: %w", core.ErrBadWindow, err)
		}
	}

	v := ix.view.Load()
	var seeds []core.Match
	var err error
	switch {
	case req.DTW:
		seeds, err = ix.deltaDTW(v, req.Query, req.Window, req.Counters)
	case k > 1:
		seeds, err = ix.deltaKNN(v, req.Query, k, req.Counters)
	default:
		seeds, err = ix.delta1NN(v, req.Query, req.Counters)
	}
	if err != nil {
		return core.Result{}, err
	}

	if v.base == nil {
		if len(seeds) == 0 {
			return core.Result{}, ErrEmpty
		}
		if len(seeds) > k {
			seeds = seeds[:k]
		}
		return core.Result{Matches: seeds, Exact: true}, nil
	}
	// The engine generation may be one rebuild ahead of v — safe, the
	// frozen series exist in both at the same positions and the bounds
	// dedupe by position (same reasoning as the deprecated paths).
	return ix.eng.DoSeeded(req, seeds)
}
