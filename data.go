package messi

import (
	"repro/internal/dataset"
	"repro/internal/series"
)

// This file re-exports the workload generators and the dataset file format
// so that examples and downstream users can produce realistic collections
// through the public API alone.

// RandomWalk generates count z-normalized random-walk series of the given
// length as flat row-major storage (the paper's synthetic workload: each
// point adds an N(0,1) step to the previous value). It panics only on
// programmer error (non-positive count/length); errors are reported by
// the Build functions.
func RandomWalk(count, length int, seed int64) []float32 {
	return mustGenerate(dataset.RandomWalk, count, length, seed)
}

// SeismicLike generates count z-normalized series resembling seismic
// waveforms (shared damped-burst events over station noise); a stand-in
// for the paper's IRIS Seismic dataset.
func SeismicLike(count, length int, seed int64) []float32 {
	return mustGenerate(dataset.SeismicLike, count, length, seed)
}

// SALDLike generates count z-normalized smooth low-frequency series
// resembling MRI-derived sequences; a stand-in for the paper's SALD
// dataset (whose native length is 128).
func SALDLike(count, length int, seed int64) []float32 {
	return mustGenerate(dataset.SALDLike, count, length, seed)
}

func mustGenerate(kind dataset.Kind, count, length int, seed int64) []float32 {
	col, err := dataset.Generate(kind, count, length, seed)
	if err != nil {
		panic("messi: " + err.Error())
	}
	return col.Data
}

// ZNormalize z-normalizes a single series in place (mean 0, standard
// deviation 1; constant series become all zeros) and returns it.
func ZNormalize(s []float32) []float32 { return series.ZNormalize(s) }

// SlidingWindows turns one long stream into flat row-major storage of all
// its length-`window` subsequences taken every `step` points, optionally
// z-normalizing each subsequence — the paper's prescription for indexing
// streaming series. Feed the result to BuildFlat with seriesLen = window;
// a match at Position p corresponds to stream offset p*step.
func SlidingWindows(stream []float32, window, step int, normalize bool) ([]float32, error) {
	c, err := dataset.SlidingWindows(stream, window, step, normalize)
	if err != nil {
		return nil, err
	}
	return c.Data, nil
}

// WriteSeriesFile saves flat row-major series data to the binary dataset
// format understood by BuildFromFile and the cmd/messi-* tools.
func WriteSeriesFile(path string, data []float32, seriesLen int) error {
	col, err := series.NewCollection(data, seriesLen)
	if err != nil {
		return err
	}
	return dataset.WriteFile(path, col)
}

// ReadSeriesFile loads a dataset file, returning the flat data and the
// series length.
func ReadSeriesFile(path string) (data []float32, seriesLen int, err error) {
	col, err := dataset.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	return col.Data, col.Length, nil
}
